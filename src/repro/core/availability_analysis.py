"""Availability, failure-rate, and MTTR analysis under fault injection.

The paper's cloud-vs-edge contrast is incomplete without reliability:
edge sites individually churn far more than cloud regions, and the
question is how much of that the retry/failover machinery absorbs.  This
module folds one run's :class:`~repro.faults.schedule.FaultSchedule`,
the campaign's probe accounting, and the failover simulator's outcome
into a single :class:`AvailabilityReport` — per-platform availability,
probe failure/recovery rates, MTTR, and the measured throughput cost of
degradation episodes.

All inputs are deterministic functions of the scenario seed, so the
formatted report is byte-identical across runs with the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FaultError
from ..faults.failover import FailoverReport
from ..faults.injection import ProbeStats
from ..faults.schedule import FaultSchedule
from ..measurement.campaign import CampaignResults
from .report import format_table


@dataclass(frozen=True)
class AvailabilityReport:
    """Reliability summary of one fault-injected study run."""

    profile: str
    horizon_minutes: float

    # Site availability (outage windows integrated over the horizon).
    edge_site_count: int
    cloud_site_count: int
    edge_mean_availability: float
    edge_min_availability: float
    edge_p5_availability: float
    cloud_mean_availability: float
    cloud_min_availability: float
    edge_outage_count: int
    cloud_outage_count: int
    mttr_minutes: float

    # Probe accounting (latency campaign).
    probes: int
    probe_timeout_rate: float
    probe_recovery_rate: float
    probe_unreachable_rate: float
    ping_loss_rate: float
    failed_edge_probes: int
    failed_cloud_probes: int

    # Failover (server crashes replayed through live migration).
    server_crashes: int
    evacuated_vms: int
    stranded_vms: int
    data_moved_gb: float
    mean_vm_downtime_seconds: float

    # Degradation episodes and their measured throughput cost.
    degradation_episodes: int
    mean_degradation_loss: float
    mean_degradation_extra_ms: float
    iperf_aborts: int
    degraded_iperf_tests: int
    #: mean degraded downlink / mean clean downlink; None when no iperf
    #: test landed inside an episode.
    degraded_throughput_ratio: float | None

    @property
    def availability_gap(self) -> float:
        """Cloud minus edge mean availability (positive = cloud wins)."""
        return self.cloud_mean_availability - self.edge_mean_availability

    def format(self) -> str:
        """The full plain-text report (CLI ``repro run availability``)."""
        site_rows = [
            ("edge (NEP)", self.edge_site_count,
             f"{self.edge_mean_availability:.5f}",
             f"{self.edge_p5_availability:.5f}",
             f"{self.edge_min_availability:.5f}", self.edge_outage_count),
            ("cloud", self.cloud_site_count,
             f"{self.cloud_mean_availability:.5f}", "-",
             f"{self.cloud_min_availability:.5f}", self.cloud_outage_count),
        ]
        probe_rows = [
            ("probes", self.probes),
            ("first-attempt timeout rate", f"{self.probe_timeout_rate:.4f}"),
            ("recovered by retries", f"{self.probe_recovery_rate:.4f}"),
            ("unreachable after retries",
             f"{self.probe_unreachable_rate:.4f}"),
            ("ping loss rate", f"{self.ping_loss_rate:.4f}"),
            ("failed probes (edge/cloud)",
             f"{self.failed_edge_probes}/{self.failed_cloud_probes}"),
        ]
        failover_rows = [
            ("server crashes", self.server_crashes),
            ("VMs evacuated (live migration)", self.evacuated_vms),
            ("VMs stranded (no feasible target)", self.stranded_vms),
            ("migration data moved (GB)", f"{self.data_moved_gb:.2f}"),
            ("mean affected-VM downtime (s)",
             f"{self.mean_vm_downtime_seconds:.2f}"),
            ("MTTR, outages + crashes (min)", f"{self.mttr_minutes:.1f}"),
        ]
        ratio = ("n/a" if self.degraded_throughput_ratio is None
                 else f"{self.degraded_throughput_ratio:.3f}")
        degradation_rows = [
            ("episodes", self.degradation_episodes),
            ("mean loss probability", f"{self.mean_degradation_loss:.3f}"),
            ("mean extra latency (ms)",
             f"{self.mean_degradation_extra_ms:.1f}"),
            ("iperf tests aborted", self.iperf_aborts),
            ("iperf tests degraded", self.degraded_iperf_tests),
            ("degraded/clean downlink ratio", ratio),
        ]
        parts = [
            f"Availability study — faults profile {self.profile!r}, "
            f"{self.horizon_minutes / 1440:.0f}-day horizon",
            "",
            format_table(["platform", "sites", "mean avail", "p5 avail",
                          "min avail", "outages"], site_rows,
                         title="Site availability"),
            "",
            format_table(["metric", "value"], probe_rows,
                         title="Probe outcomes (latency campaign)"),
            "",
            format_table(["metric", "value"], failover_rows,
                         title="Failover"),
            "",
            format_table(["metric", "value"], degradation_rows,
                         title="Access degradation"),
        ]
        return "\n".join(parts)


def run_availability_study(schedule: FaultSchedule,
                           latency_results: CampaignResults,
                           throughput_results: CampaignResults,
                           failover: FailoverReport) -> AvailabilityReport:
    """Fold one run's fault outcomes into an :class:`AvailabilityReport`.

    Raises:
        FaultError: if the latency results carry no probe accounting
            (i.e. the campaign ran without the fault schedule attached).
    """
    stats = latency_results.probe_stats
    if stats is None:
        raise FaultError(
            "latency results carry no probe accounting — the campaign ran "
            "without the fault schedule attached"
        )
    return AvailabilityReport(
        profile=schedule.profile_name,
        horizon_minutes=schedule.horizon_minutes,
        **_site_fields(schedule),
        **_probe_fields(stats, latency_results),
        server_crashes=failover.crashes,
        evacuated_vms=failover.evacuated_vms,
        stranded_vms=failover.stranded_vms,
        data_moved_gb=failover.total_data_moved_gb,
        mean_vm_downtime_seconds=failover.mean_vm_downtime_seconds,
        **_degradation_fields(schedule, throughput_results),
    )


def _site_fields(schedule: FaultSchedule) -> dict[str, object]:
    edge = schedule.availabilities(schedule.edge_site_ids)
    cloud = schedule.availabilities(schedule.cloud_site_ids)
    edge_sites = set(schedule.edge_site_ids)
    return {
        "edge_site_count": len(schedule.edge_site_ids),
        "cloud_site_count": len(schedule.cloud_site_ids),
        "edge_mean_availability": float(edge.mean()),
        "edge_min_availability": float(edge.min()),
        "edge_p5_availability": float(np.percentile(edge, 5.0)),
        "cloud_mean_availability": float(cloud.mean()),
        "cloud_min_availability": float(cloud.min()),
        "edge_outage_count": sum(1 for o in schedule.outages
                                 if o.site_id in edge_sites),
        "cloud_outage_count": sum(1 for o in schedule.outages
                                  if o.site_id not in edge_sites),
        "mttr_minutes": schedule.mttr_minutes(),
    }


def _probe_fields(stats: ProbeStats,
                  latency_results: CampaignResults) -> dict[str, object]:
    ping_failures = [f for f in latency_results.failures
                     if f.probe == "ping"]
    return {
        "probes": stats.probes,
        "probe_timeout_rate": stats.timeout_rate,
        "probe_recovery_rate": stats.recovery_rate,
        "probe_unreachable_rate": stats.unreachable_rate,
        "ping_loss_rate": stats.ping_loss_rate,
        "failed_edge_probes": sum(1 for f in ping_failures
                                  if f.target_kind == "edge"),
        "failed_cloud_probes": sum(1 for f in ping_failures
                                   if f.target_kind == "cloud"),
    }


def _degradation_fields(schedule: FaultSchedule,
                        throughput_results: CampaignResults,
                        ) -> dict[str, object]:
    degraded = [o.result.downlink_mbps
                for o in throughput_results.throughput if o.degraded]
    clean = [o.result.downlink_mbps
             for o in throughput_results.throughput if not o.degraded]
    ratio = None
    if degraded and clean:
        ratio = float(np.mean(degraded) / np.mean(clean))
    return {
        "degradation_episodes": len(schedule.episodes),
        "mean_degradation_loss": schedule.mean_degradation_loss(),
        "mean_degradation_extra_ms": schedule.mean_degradation_extra_ms(),
        "iperf_aborts": sum(1 for f in throughput_results.failures
                            if f.probe == "iperf"),
        "degraded_iperf_tests": len(degraded),
        "degraded_throughput_ratio": ratio,
    }
