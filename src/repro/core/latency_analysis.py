"""§3.1 analyses: end-to-end latency, jitter, hops, inter-site RTTs.

Implements the paper's aggregation discipline: per-user averages first
("to eliminate the impacts from heavy users"), then distributions across
users.  The four baselines are the nearest edge, the 3rd-nearest edge,
the nearest cloud, and the all-cloud average.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import MeasurementError
from ..measurement.campaign import LatencyObservation
from ..netsim.access import AccessType
from ..netsim.routing import SAME_METRO_KM, backbone_rtt_ms
from ..platform.cluster import Platform
from .stats import ECDF


@dataclass(frozen=True)
class PerUserLatency:
    """One participant's per-user averages over the four baselines."""

    participant_id: str
    access: AccessType
    nearest_edge_rtt: float
    third_edge_rtt: float
    nearest_cloud_rtt: float
    all_cloud_rtt: float
    nearest_edge_cv: float
    third_edge_cv: float
    nearest_cloud_cv: float
    all_cloud_cv: float
    nearest_edge_hops: int
    nearest_cloud_hops: int
    nearest_edge_hop_shares: tuple[float | None, ...]
    nearest_cloud_hop_shares: tuple[float | None, ...]


def per_user_latency(observations: list[LatencyObservation],
                     ) -> list[PerUserLatency]:
    """Collapse raw observations into one record per participant.

    Raises:
        MeasurementError: if a participant lacks 3 edge or 1 cloud target.
    """
    by_user: dict[str, list[LatencyObservation]] = {}
    for obs in observations:
        by_user.setdefault(obs.participant_id, []).append(obs)

    records = []
    for participant_id, user_obs in by_user.items():
        edges = sorted((o for o in user_obs if o.target_kind == "edge"),
                       key=lambda o: o.mean_rtt_ms)
        clouds = sorted((o for o in user_obs if o.target_kind == "cloud"),
                        key=lambda o: o.mean_rtt_ms)
        if len(edges) < 3 or not clouds:
            raise MeasurementError(
                f"participant {participant_id}: needs >=3 edge and >=1 "
                f"cloud observations, got {len(edges)}/{len(clouds)}"
            )
        records.append(PerUserLatency(
            participant_id=participant_id,
            access=user_obs[0].access,
            nearest_edge_rtt=edges[0].mean_rtt_ms,
            third_edge_rtt=edges[2].mean_rtt_ms,
            nearest_cloud_rtt=clouds[0].mean_rtt_ms,
            all_cloud_rtt=float(np.mean([o.mean_rtt_ms for o in clouds])),
            nearest_edge_cv=edges[0].rtt_cv,
            third_edge_cv=edges[2].rtt_cv,
            nearest_cloud_cv=clouds[0].rtt_cv,
            all_cloud_cv=float(np.mean([o.rtt_cv for o in clouds])),
            nearest_edge_hops=edges[0].hop_count,
            nearest_cloud_hops=clouds[0].hop_count,
            nearest_edge_hop_shares=edges[0].hop_shares,
            nearest_cloud_hop_shares=clouds[0].hop_shares,
        ))
    return records


#: The four baselines of Figure 2, in plot order.
BASELINES = ("nearest_edge", "third_edge", "nearest_cloud", "all_cloud")


def rtt_cdfs(records: list[PerUserLatency], access: AccessType,
             ) -> dict[str, ECDF]:
    """Figure 2(a): per-baseline mean-RTT CDFs for one access type."""
    subset = [r for r in records if r.access is access]
    if not subset:
        raise MeasurementError(f"no records for access {access}")
    return {
        "nearest_edge": ECDF.from_samples([r.nearest_edge_rtt for r in subset]),
        "third_edge": ECDF.from_samples([r.third_edge_rtt for r in subset]),
        "nearest_cloud": ECDF.from_samples([r.nearest_cloud_rtt for r in subset]),
        "all_cloud": ECDF.from_samples([r.all_cloud_rtt for r in subset]),
    }


def cv_cdfs(records: list[PerUserLatency], access: AccessType,
            ) -> dict[str, ECDF]:
    """Figure 2(b): per-baseline RTT-CV CDFs for one access type."""
    subset = [r for r in records if r.access is access]
    if not subset:
        raise MeasurementError(f"no records for access {access}")
    return {
        "nearest_edge": ECDF.from_samples([r.nearest_edge_cv for r in subset]),
        "third_edge": ECDF.from_samples([r.third_edge_cv for r in subset]),
        "nearest_cloud": ECDF.from_samples([r.nearest_cloud_cv for r in subset]),
        "all_cloud": ECDF.from_samples([r.all_cloud_cv for r in subset]),
    }


@dataclass(frozen=True)
class HopBreakdown:
    """Table 2 row: share of end-to-end RTT per early hop."""

    access: AccessType
    target: str                 # "nearest_edge" or "nearest_cloud"
    hop1: float | None          # None when ICMP-hidden (5G)
    hop2: float | None
    hop3: float | None
    first3_total: float
    rest: float


def hop_breakdown(records: list[PerUserLatency], access: AccessType,
                  target: str) -> HopBreakdown:
    """Aggregate per-hop latency shares across users (Table 2)."""
    subset = [r for r in records if r.access is access]
    if not subset:
        raise MeasurementError(f"no records for access {access}")
    if target == "nearest_edge":
        share_lists = [r.nearest_edge_hop_shares for r in subset]
    elif target == "nearest_cloud":
        share_lists = [r.nearest_cloud_hop_shares for r in subset]
    else:
        raise MeasurementError(f"unknown target {target!r}")

    def mean_share(index: int) -> float | None:
        values = [shares[index] for shares in share_lists
                  if len(shares) > index]
        if any(v is None for v in values):
            return None
        return float(np.mean([v for v in values if v is not None]))

    hop1, hop2, hop3 = mean_share(0), mean_share(1), mean_share(2)
    # First-3 total: hidden hops report None but their latency is absorbed
    # by the next visible hop's share, so summing the non-None entries of
    # the first three positions is exactly the paper's "in total" number.
    first3_values = []
    for shares in share_lists:
        total = sum(s for s in shares[:3] if s is not None)
        first3_values.append(total)
    first3 = float(np.mean(first3_values))
    return HopBreakdown(
        access=access, target=target,
        hop1=hop1, hop2=hop2, hop3=hop3,
        first3_total=first3, rest=1.0 - first3,
    )


def hop_count_cdf(records: list[PerUserLatency], target: str) -> ECDF:
    """Figure 3: hop counts to the nearest edge or cloud, all accesses."""
    if target == "nearest_edge":
        return ECDF.from_samples([r.nearest_edge_hops for r in records])
    if target == "nearest_cloud":
        return ECDF.from_samples([r.nearest_cloud_hops for r in records])
    raise MeasurementError(f"unknown target {target!r}")


# ---- Figure 4: inter-site RTT -----------------------------------------------


def _haversine_matrix(lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Pairwise great-circle distances (km) between site coordinates."""
    lat_r = np.radians(lats)[:, None]
    lon_r = np.radians(lons)[:, None]
    d_lat = lat_r - lat_r.T
    d_lon = lon_r - lon_r.T
    h = (np.sin(d_lat / 2) ** 2
         + np.cos(lat_r) * np.cos(lat_r.T) * np.sin(d_lon / 2) ** 2)
    return 2 * 6371.0 * np.arcsin(np.sqrt(np.clip(h, 0.0, 1.0)))


#: Inter-city DC-to-DC traffic detours via provincial/national exchange
#: hubs (ISP rooms rarely peer directly), adding an effective ~480 km to
#: the fibre path.  Calibrated so each site sees ~1/3/11 neighbours
#: within 5/10/20 ms, as Figure 4 reports.
INTERSITE_DETOUR_KM = 480.0


def _expected_intersite_rtt(distances_km: np.ndarray) -> np.ndarray:
    """Site-to-site RTT model, vectorised (gateways + backbone + detour).

    Single source of truth for the Figure 4 calibration constants: the
    scalar :func:`expected_intersite_rtt_ms` delegates here.
    """
    metro = 2.0 + 0.12 * distances_km  # metro cross-connects
    hops = 2.0 + distances_km / 400.0
    long_haul = (2.0
                 + 2.0 * (distances_km + INTERSITE_DETOUR_KM) * 2.6 / 200.0
                 + hops * 0.5)
    return np.where(distances_km <= SAME_METRO_KM, metro, long_haul)


def expected_intersite_rtt_ms(distance_km: float) -> float:
    """Deterministic site-to-site RTT (gateways + backbone + detour)."""
    return float(_expected_intersite_rtt(np.asarray(distance_km,
                                                    dtype=float)))


@dataclass(frozen=True)
class IntersiteSummary:
    """Figure 4 artefacts: (distance, RTT) pairs and proximity counts."""

    distances_km: np.ndarray
    rtts_ms: np.ndarray
    mean_sites_within_5ms: float
    mean_sites_within_10ms: float
    mean_sites_within_20ms: float


def intersite_summary(platform: Platform,
                      rng: np.random.Generator,
                      jitter_fraction: float = 0.08) -> IntersiteSummary:
    """Measure the full inter-site RTT matrix of an edge platform.

    RTTs use the deterministic backbone model plus a small multiplicative
    measurement jitter; proximity counts average, over sites, how many
    *other* sites fall within 5/10/20 ms.
    """
    sites = platform.sites
    if len(sites) < 2:
        raise MeasurementError("need at least two sites for inter-site RTTs")
    lats = np.array([s.location.lat for s in sites])
    lons = np.array([s.location.lon for s in sites])
    distances = _haversine_matrix(lats, lons)
    base = _expected_intersite_rtt(distances)
    noise = rng.normal(1.0, jitter_fraction, size=base.shape)
    rtts = base * np.clip(noise, 0.6, 1.6)
    np.fill_diagonal(rtts, 0.0)

    upper = np.triu_indices(len(sites), k=1)
    off_diag = ~np.eye(len(sites), dtype=bool)
    within = lambda t: float(np.mean((rtts <= t)[off_diag]
                                     .reshape(len(sites), -1).sum(axis=1)))
    return IntersiteSummary(
        distances_km=distances[upper],
        rtts_ms=rtts[upper],
        mean_sites_within_5ms=within(5.0),
        mean_sites_within_10ms=within(10.0),
        mean_sites_within_20ms=within(20.0),
    )
