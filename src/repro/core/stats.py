"""Statistics toolkit used by every analysis in :mod:`repro.core`.

The paper reports its results almost exclusively as CDFs, medians,
coefficients of variation, tail ratios (P95/P5), and Pearson correlations.
This module implements those primitives once, with explicit handling of the
degenerate inputs (empty samples, zero means) that real traces produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ECDF",
    "SeriesSummary",
    "coefficient_of_variation",
    "fairness_index",
    "pearson_correlation",
    "percentile",
    "quantile_ratio",
    "rmse",
    "summarize",
]


def _as_array(values: Iterable[float]) -> np.ndarray:
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                       dtype=float)
    if array.ndim != 1:
        array = array.ravel()
    return array


@dataclass(frozen=True)
class ECDF:
    """Empirical cumulative distribution function of a 1-D sample.

    Stores the sorted sample; evaluation and quantile lookup are O(log n).
    """

    values: np.ndarray

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "ECDF":
        array = _as_array(samples)
        if array.size == 0:
            raise ValueError("cannot build an ECDF from an empty sample")
        if np.isnan(array).any():
            array = array[~np.isnan(array)]
            if array.size == 0:
                raise ValueError("sample contained only NaN values")
        return cls(values=np.sort(array))

    def __len__(self) -> int:
        return int(self.values.size)

    def evaluate(self, x: float) -> float:
        """Fraction of the sample that is <= ``x``."""
        return float(np.searchsorted(self.values, x, side="right")) / len(self)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (0..1), linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.values, q))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    def curve(self, points: int = 200) -> tuple[np.ndarray, np.ndarray]:
        """(x, F(x)) arrays suitable for plotting or tabulating the CDF."""
        if points < 2:
            raise ValueError("need at least two curve points")
        n = len(self)
        xs = self.values
        ys = np.arange(1, n + 1) / n
        if n <= points:
            return xs.copy(), ys
        idx = np.linspace(0, n - 1, points).round().astype(int)
        return xs[idx], ys[idx]

    def fraction_below(self, x: float) -> float:
        """Alias of :meth:`evaluate`, reads better in analysis code."""
        return self.evaluate(x)


def percentile(samples: Iterable[float], pct: float) -> float:
    """The ``pct``-th percentile (0..100) of a sample."""
    array = _as_array(samples)
    if array.size == 0:
        raise ValueError("cannot take a percentile of an empty sample")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    return float(np.percentile(array, pct))


def coefficient_of_variation(samples: Iterable[float]) -> float:
    """CV = std / mean, the paper's jitter and usage-variability metric.

    Returns 0.0 for a zero-mean sample (an idle VM has no variability in
    any meaningful sense, and the paper's plots treat it the same way).
    """
    array = _as_array(samples)
    if array.size == 0:
        raise ValueError("cannot compute CV of an empty sample")
    mean = float(array.mean())
    if mean == 0.0:
        return 0.0
    return float(array.std() / abs(mean))


def pearson_correlation(x: Iterable[float], y: Iterable[float]) -> float:
    """Pearson correlation coefficient between two equally-long samples.

    Returns 0.0 when either sample is constant — the paper reads a
    negligible correlation in exactly that way for capacity-capped links.
    """
    ax, ay = _as_array(x), _as_array(y)
    if ax.size != ay.size:
        raise ValueError(f"length mismatch: {ax.size} vs {ay.size}")
    if ax.size < 2:
        raise ValueError("need at least two points for a correlation")
    if ax.std() == 0.0 or ay.std() == 0.0:
        return 0.0
    return float(np.corrcoef(ax, ay)[0, 1])


def quantile_ratio(samples: Iterable[float], upper: float = 95.0,
                   lower: float = 5.0, floor: float = 1e-9) -> float:
    """P``upper`` / P``lower`` ratio, the paper's imbalance metric (§4.3).

    ``floor`` guards against division by a zero lower percentile, which
    happens for apps containing fully idle VMs; the paper's ">50x gap"
    statistic needs those apps to land in the large-ratio bucket, not NaN.
    """
    hi = percentile(samples, upper)
    lo = percentile(samples, lower)
    return hi / max(lo, floor)


def fairness_index(samples: Iterable[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 means perfectly even allocation; 1/n means one unit hogs
    everything.  Complements the paper's P95/P5 gap (§4.3) with a
    bounded, size-independent balance score.

    Raises:
        ValueError: on an empty sample or any negative value.
    """
    array = _as_array(samples)
    if array.size == 0:
        raise ValueError("cannot compute fairness of an empty sample")
    if (array < 0).any():
        raise ValueError("fairness index requires non-negative samples")
    squares = float(np.sum(array ** 2))
    if squares == 0.0:
        return 1.0  # all-zero allocation is trivially even
    return float(np.sum(array)) ** 2 / (array.size * squares)


def rmse(predicted: Iterable[float], actual: Iterable[float]) -> float:
    """Root mean square error between predictions and ground truth."""
    p, a = _as_array(predicted), _as_array(actual)
    if p.size != a.size:
        raise ValueError(f"length mismatch: {p.size} vs {a.size}")
    if p.size == 0:
        raise ValueError("cannot compute RMSE of empty arrays")
    return float(np.sqrt(np.mean((p - a) ** 2)))


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-style summary used throughout the report tables."""

    count: int
    mean: float
    std: float
    minimum: float
    p5: float
    median: float
    p95: float
    maximum: float

    @property
    def cv(self) -> float:
        if self.mean == 0.0:
            return 0.0
        return self.std / abs(self.mean)


def summarize(samples: Iterable[float]) -> SeriesSummary:
    """Build a :class:`SeriesSummary` for a non-empty sample."""
    array = _as_array(samples)
    if array.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return SeriesSummary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        p5=float(np.percentile(array, 5)),
        median=float(np.percentile(array, 50)),
        p95=float(np.percentile(array, 95)),
        maximum=float(array.max()),
    )
