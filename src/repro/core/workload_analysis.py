"""§4.1-§4.2 analyses: VM subscription, sales rates, CPU utilisation.

Covers Figure 8 (VM size CDFs), Figure 9 (per-app VM counts), Figure 10
(CPU utilisation and its across-time variance), and the sales-rate
skew statistics the paper describes in prose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceError
from ..platform.cluster import Platform
from ..trace.dataset import TraceDataset
from .chunks import (
    StreamingHistogram,
    cpu_row_stats,
    iter_series_chunks,
    per_vm_totals,
)
from .stats import ECDF, percentile

#: Figure 8 size buckets: small <= 4, medium 5-16, large > 16 (cores/GB).
SIZE_BUCKETS = ((0, 4), (5, 16), (17, 10**9))
SIZE_BUCKET_NAMES = ("small", "medium", "large")


@dataclass(frozen=True)
class VMSizeSummary:
    """Figure 8 artefacts for one platform."""

    platform: str
    cpu_cdf: ECDF
    memory_cdf: ECDF
    cpu_bucket_shares: dict[str, float]
    memory_bucket_shares: dict[str, float]
    median_cpu: float
    median_memory_gb: float
    median_disk_gb: float
    mean_disk_gb: float


def _bucket_shares(values: np.ndarray) -> dict[str, float]:
    shares = {}
    for name, (low, high) in zip(SIZE_BUCKET_NAMES, SIZE_BUCKETS):
        shares[name] = float(np.mean((values >= low) & (values <= high)))
    return shares


def vm_size_summary(dataset: TraceDataset) -> VMSizeSummary:
    """Figure 8: the VM-size distributions of one platform's trace."""
    if not dataset.vms:
        raise TraceError("dataset has no VMs")
    cpu = np.array([vm.cpu_cores for vm in dataset.vms.values()], dtype=float)
    mem = np.array([vm.memory_gb for vm in dataset.vms.values()], dtype=float)
    disk = np.array([vm.disk_gb for vm in dataset.vms.values()], dtype=float)
    return VMSizeSummary(
        platform=dataset.platform_name,
        cpu_cdf=ECDF.from_samples(cpu),
        memory_cdf=ECDF.from_samples(mem),
        cpu_bucket_shares=_bucket_shares(cpu),
        memory_bucket_shares=_bucket_shares(mem),
        median_cpu=float(np.median(cpu)),
        median_memory_gb=float(np.median(mem)),
        median_disk_gb=float(np.median(disk)),
        mean_disk_gb=float(disk.mean()),
    )


@dataclass(frozen=True)
class AppVmCountSummary:
    """Figure 9 artefacts for one platform."""

    platform: str
    counts_cdf: ECDF
    fraction_at_least_50: float
    max_vms: int


def app_vm_count_summary(dataset: TraceDataset) -> AppVmCountSummary:
    """Figure 9: VMs per app on one platform."""
    counts = np.array([len(dataset.vms_of_app(app_id))
                       for app_id in dataset.app_ids_with_vms()], dtype=float)
    if counts.size == 0:
        raise TraceError("dataset has no apps with VMs")
    return AppVmCountSummary(
        platform=dataset.platform_name,
        counts_cdf=ECDF.from_samples(counts),
        fraction_at_least_50=float(np.mean(counts >= 50)),
        max_vms=int(counts.max()),
    )


@dataclass(frozen=True)
class CpuUtilizationSummary:
    """Figure 10 artefacts for one platform."""

    platform: str
    mean_cdf: ECDF
    p95_max_cdf: ECDF
    cv_cdf: ECDF
    fraction_mean_below_10pct: float
    median_cv: float
    overall_mean_utilization: float


def cpu_utilization_summary(dataset: TraceDataset) -> CpuUtilizationSummary:
    """Figure 10: per-VM mean, P95-max, and across-time CV of CPU usage.

    Runs as one chunked pass over the CPU series (the out-of-core bulk
    path), producing exactly the values the per-VM
    :meth:`~repro.trace.dataset.TraceDataset.mean_cpu` /
    ``p95_max_cpu`` / ``cpu_cv`` accessors give.
    """
    if not dataset.vms:
        raise TraceError("dataset has no VMs")
    vm_ids = dataset.vm_ids()
    mean_map, p95_map, cv_map = cpu_row_stats(dataset.cpu_series)
    means = np.array([mean_map[v] for v in vm_ids])
    p95s = np.array([p95_map[v] for v in vm_ids])
    cvs = np.array([cv_map[v] for v in vm_ids])
    return CpuUtilizationSummary(
        platform=dataset.platform_name,
        mean_cdf=ECDF.from_samples(means),
        p95_max_cdf=ECDF.from_samples(p95s),
        cv_cdf=ECDF.from_samples(cvs),
        fraction_mean_below_10pct=float(np.mean(means < 0.10)),
        median_cv=float(np.median(cvs)),
        overall_mean_utilization=float(means.mean()),
    )


@dataclass(frozen=True)
class SalesRateSummary:
    """§4.1 sales-rate skew: p95/p5 across sites, CPU-vs-memory ratio."""

    platform: str
    site_cpu_p95_over_p5: float
    median_site_cpu_rate: float
    median_site_memory_rate: float

    @property
    def cpu_over_memory_ratio(self) -> float:
        if self.median_site_memory_rate == 0.0:
            return float("inf")
        return self.median_site_cpu_rate / self.median_site_memory_rate


def sales_rate_summary(platform: Platform,
                       floor: float = 1e-3) -> SalesRateSummary:
    """Sales-rate statistics from a live platform inventory.

    Only sites with any sold capacity enter the p95/p5 skew (a brand-new
    empty site is not a sales-rate observation, it is inventory).
    """
    cpu_rates = np.array([r for r in platform.site_cpu_sales_rates() if r > 0])
    mem_rates = np.array([r for r in platform.site_memory_sales_rates()
                          if r > 0])
    if cpu_rates.size == 0:
        raise TraceError(f"platform {platform.name} has no sold capacity")
    return SalesRateSummary(
        platform=platform.name,
        site_cpu_p95_over_p5=(percentile(cpu_rates, 95)
                              / max(percentile(cpu_rates, 5), floor)),
        median_site_cpu_rate=float(np.median(cpu_rates)),
        median_site_memory_rate=float(np.median(mem_rates))
        if mem_rates.size else 0.0,
    )


@dataclass(frozen=True)
class CategoryBreakdown:
    """§4.1's application-type view: who the platform's customers are."""

    platform: str
    #: category -> (app count, VM count, share of total public traffic).
    categories: dict[str, tuple[int, int, float]]

    def traffic_share(self, category: str) -> float:
        if category not in self.categories:
            raise TraceError(f"unknown category {category!r}")
        return self.categories[category][2]

    @property
    def video_centric_share(self) -> float:
        """Traffic share of the video-dominated categories (§4.5's
        "current edge apps are mostly video-centric")."""
        video = {"live_streaming", "cdn", "video_communication",
                 "video_surveillance", "cloud_gaming"}
        return sum(share for cat, (_, _, share) in self.categories.items()
                   if cat in video)


def category_breakdown(dataset: TraceDataset) -> CategoryBreakdown:
    """Apps, VMs, and traffic share per application category (§4.1).

    Raises:
        TraceError: if the dataset has no VMs.
    """
    if not dataset.vms:
        raise TraceError("dataset has no VMs")
    apps_per_category: dict[str, set[str]] = {}
    vms_per_category: dict[str, int] = {}
    traffic_per_category: dict[str, float] = {}
    total_traffic = 0.0
    vm_traffic = per_vm_totals(dataset.bw_series)
    for vm in dataset.vms.values():
        apps_per_category.setdefault(vm.category, set()).add(vm.app_id)
        vms_per_category[vm.category] = \
            vms_per_category.get(vm.category, 0) + 1
        traffic = vm_traffic[vm.vm_id]
        traffic_per_category[vm.category] = \
            traffic_per_category.get(vm.category, 0.0) + traffic
        total_traffic += traffic
    categories = {
        category: (
            len(apps_per_category[category]),
            vms_per_category[category],
            traffic_per_category[category] / total_traffic
            if total_traffic else 0.0,
        )
        for category in sorted(apps_per_category)
    }
    return CategoryBreakdown(platform=dataset.platform_name,
                             categories=categories)


@dataclass(frozen=True)
class CpuTickQuantiles:
    """Platform-level quantiles over *all* CPU readings of a trace.

    Unlike Figure 10 (per-VM summaries), this pools every
    ``(vm, interval)`` reading — the platform operator's "how loaded is
    the fleet at a random tick" view.  Values come from a mergeable
    fixed-bin sketch, so they are approximate with error bounded by
    :attr:`max_error` (one histogram bin width) — which is why the exact
    per-VM statistics above remain the paper-figure source of truth.
    """

    platform: str
    quantiles: dict[float, float]
    readings: int
    max_error: float


def cpu_tick_quantiles(dataset: TraceDataset,
                       qs: tuple[float, ...] = (0.5, 0.9, 0.99),
                       bins: int = 4096) -> CpuTickQuantiles:
    """Pooled CPU-reading quantiles via a streaming histogram sketch.

    One chunked pass, ``O(bins)`` state: works unchanged over an
    out-of-core sharded trace where the pooled readings could never be
    sorted in memory.

    Raises:
        TraceError: if the dataset has no VMs.
    """
    if not dataset.vms:
        raise TraceError("dataset has no VMs")
    sketch = StreamingHistogram(lo=0.0, hi=1.0, bins=bins)
    for _, window in iter_series_chunks(dataset.cpu_series):
        sketch.add(window)
    return CpuTickQuantiles(
        platform=dataset.platform_name,
        quantiles={float(q): sketch.quantile(q) for q in qs},
        readings=sketch.count,
        max_error=sketch.bin_width,
    )
