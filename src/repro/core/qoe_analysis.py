"""§3.3 analyses: cloud-gaming and live-streaming QoE experiments.

Drives the QoE testbed (one edge VM + three cloud VMs) through the
configurations of Figure 6 (network x device x game) and Figure 7
(network x resolution x transcode), collecting the 50-sample trials and
stage breakdowns the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeasurementError
from ..measurement.qoe.devices import Device, GAMING_DEVICES, SAMSUNG_NOTE10
from ..measurement.qoe.gaming import (
    CloudGamingSession,
    FLARE,
    GAMES,
    Game,
    GamingConfig,
)
from ..measurement.qoe.gaming import mean_breakdown as gaming_mean_breakdown
from ..measurement.qoe.streaming import (
    LiveStreamingSession,
    Player,
    Resolution,
    StreamingConfig,
)
from ..measurement.qoe.streaming import mean_breakdown as streaming_mean_breakdown
from ..measurement.qoe.testbed import QoETestbed
from ..netsim.access import AccessType

#: Figure 6 gamer tolerance line.
GAMING_DELAY_BUDGET_MS = 100.0


@dataclass(frozen=True)
class GamingExperimentResult:
    """One Figure 6 bar: a configuration's response-delay sample."""

    vm_label: str
    access: AccessType
    device_name: str
    game_name: str
    delays_ms: np.ndarray
    breakdown: dict[str, float]

    @property
    def mean_ms(self) -> float:
        return float(self.delays_ms.mean())

    @property
    def p95_ms(self) -> float:
        return float(np.percentile(self.delays_ms, 95))


class GamingExperiment:
    """Runs the §3.3.1 cloud-gaming experiment over the 4-VM testbed."""

    def __init__(self, testbed: QoETestbed, rng: np.random.Generator,
                 trials: int = 50) -> None:
        if trials <= 0:
            raise MeasurementError(f"trials must be positive, got {trials}")
        self._testbed = testbed
        self._rng = rng
        self._trials = trials

    def run_config(self, vm_label: str, access: AccessType,
                   device: Device = SAMSUNG_NOTE10, game: Game = FLARE,
                   gpu_rendering: bool = False) -> GamingExperimentResult:
        """Run one testbed configuration (default = the paper's default)."""
        rtt = self._testbed.measure_rtt_ms(access, vm_label)
        down, up = self._testbed.link_capacities_mbps(access)
        config = GamingConfig(device=device, game=game, rtt_ms=rtt,
                              downlink_mbps=down, uplink_mbps=up,
                              gpu_rendering=gpu_rendering)
        session = CloudGamingSession(config, self._rng)
        trials = session.run(self._trials)
        return GamingExperimentResult(
            vm_label=vm_label,
            access=access,
            device_name=device.name,
            game_name=game.name,
            delays_ms=np.array([t.response_delay_ms for t in trials]),
            breakdown=gaming_mean_breakdown(trials),
        )

    def sweep_networks(self) -> list[GamingExperimentResult]:
        """Figure 6(a): all four VMs x WiFi/LTE/5G, default device/game."""
        results = []
        for access in (AccessType.WIFI, AccessType.LTE, AccessType.FIVE_G):
            for vm in self._testbed.vms:
                results.append(self.run_config(vm.label, access))
        return results

    def sweep_devices(self) -> list[GamingExperimentResult]:
        """Figure 6(b): the three phones on WiFi against edge and clouds."""
        results = []
        for device in GAMING_DEVICES:
            for vm in self._testbed.vms:
                results.append(self.run_config(vm.label, AccessType.WIFI,
                                               device=device))
        return results

    def sweep_games(self) -> list[GamingExperimentResult]:
        """Figure 6(c): the three games on WiFi against edge and clouds."""
        results = []
        for game in GAMES:
            for vm in self._testbed.vms:
                results.append(self.run_config(vm.label, AccessType.WIFI,
                                               game=game))
        return results


@dataclass(frozen=True)
class StreamingExperimentResult:
    """One Figure 7 bar: a configuration's streaming-delay sample."""

    vm_label: str
    access: AccessType
    resolution: Resolution
    transcode: bool
    jitter_buffer_mb: float
    delays_ms: np.ndarray
    breakdown: dict[str, float]

    @property
    def mean_ms(self) -> float:
        return float(self.delays_ms.mean())


class StreamingExperiment:
    """Runs the §3.3.2 live-streaming experiment over the 4-VM testbed."""

    def __init__(self, testbed: QoETestbed, rng: np.random.Generator,
                 trials: int = 50) -> None:
        if trials <= 0:
            raise MeasurementError(f"trials must be positive, got {trials}")
        self._testbed = testbed
        self._rng = rng
        self._trials = trials

    def run_config(self, vm_label: str, access: AccessType,
                   resolution: Resolution = Resolution.P1080,
                   transcode: bool = False,
                   player: Player = Player.MPLAYER,
                   jitter_buffer_mb: float = 0.0,
                   ) -> StreamingExperimentResult:
        """Run one configuration; defaults follow the paper (1080p, none)."""
        rtt = self._testbed.measure_rtt_ms(access, vm_label)
        down, up = self._testbed.link_capacities_mbps(access)
        config = StreamingConfig(rtt_ms=rtt, uplink_mbps=up,
                                 downlink_mbps=down, resolution=resolution,
                                 transcode=transcode, player=player,
                                 jitter_buffer_mb=jitter_buffer_mb)
        session = LiveStreamingSession(config, self._rng)
        trials = session.run(self._trials)
        return StreamingExperimentResult(
            vm_label=vm_label,
            access=access,
            resolution=resolution,
            transcode=transcode,
            jitter_buffer_mb=jitter_buffer_mb,
            delays_ms=np.array([t.streaming_delay_ms for t in trials]),
            breakdown=streaming_mean_breakdown(trials),
        )

    def sweep_networks(self) -> list[StreamingExperimentResult]:
        """Figure 7: WiFi/LTE/5G x all VMs, plus the WiFi-trans setting."""
        results = []
        for access in (AccessType.WIFI, AccessType.LTE, AccessType.FIVE_G):
            for vm in self._testbed.vms:
                results.append(self.run_config(vm.label, access))
        for vm in self._testbed.vms:  # "WiFi-trans": 720p -> 1080p upscale
            results.append(self.run_config(vm.label, AccessType.WIFI,
                                           transcode=True))
        return results

    def sweep_resolutions(self) -> list[StreamingExperimentResult]:
        """The 1080p-vs-720p comparison (~67 ms saving)."""
        results = []
        for resolution in (Resolution.P1080, Resolution.P720):
            results.append(self.run_config("Edge", AccessType.WIFI,
                                           resolution=resolution))
        return results

    def jitter_buffer_comparison(self) -> list[StreamingExperimentResult]:
        """No-buffer vs 2 MB buffer: delay jumps toward 2 s and the
        edge/cloud difference becomes trivial."""
        results = []
        for vm_label in ("Edge", "Cloud-3"):
            for buffer_mb in (0.0, 2.0):
                results.append(self.run_config(vm_label, AccessType.WIFI,
                                               jitter_buffer_mb=buffer_mb))
        return results
