"""Chunked reductions over trace series: one pass, bounded memory.

The §4 analyses historically pulled one 1-D row per VM out of
``dataset.cpu_series`` / ``bw_series`` and reduced it in a Python loop.
That shape breaks down out-of-core: a city-scale sharded store serves
rows from memory-mapped shard files, and touching them one VM at a time
fault-in pages in the worst possible order.  This module is the shared
bulk path: :func:`iter_series_chunks` yields bounded ``(vm_ids, rows)``
windows in trace order from *either* backing store, and the reduction
helpers (:func:`per_vm_means`, :func:`per_vm_totals`,
:func:`cpu_row_stats`) compute per-VM scalars window by window.

Bit-identity contract
---------------------

Streaming must never change results, so every helper reproduces the
exact float semantics of the row-at-a-time originals: reductions run
along ``axis=1`` of a C-contiguous float32 window, which applies the
same pairwise summation per row that a 1-D ``row.mean()`` uses, and
scalar post-processing (the ``float(std / mean)`` CV dance) keeps the
original operand types and order.  ``tests/core/test_chunks.py`` pins
this equivalence; the golden-digest suite pins it end to end.

:class:`StreamingHistogram` is the exception that proves the rule: it
is an explicitly *approximate*, mergeable fixed-bin sketch for
platform-level tick quantiles, where an exact answer would require
holding every reading at once.  Its error is bounded by one bin width
and it is never used for paper-figure statistics.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from ..errors import TraceError

#: Default window height for chunked passes.  Matches the sharded
#: store's shard rows so a window is one zero-copy mmap slice there.
DEFAULT_CHUNK_ROWS = 1024


def iter_series_chunks(series: Mapping[str, np.ndarray],
                       rows: int = DEFAULT_CHUNK_ROWS,
                       ) -> Iterator[tuple[list[str], np.ndarray]]:
    """Yield ``(vm_ids, rows_2d)`` windows over a series mapping.

    Works on both backing stores: a
    :class:`~repro.shards.ShardedSeriesMap` serves shard-aligned
    zero-copy mmap windows via its own ``iter_windows``; a plain dict is
    stacked into float32 windows of ``rows`` rows.  Windows arrive in
    trace (insertion) order either way, and each row in a window is
    bit-equal to the mapping's 1-D row.

    Raises:
        TraceError: on a non-positive ``rows``.
    """
    if rows <= 0:
        raise TraceError(f"chunk rows must be positive, got {rows}")
    if hasattr(series, "iter_windows"):
        yield from series.iter_windows(rows=rows)
        return
    vm_ids = list(series)
    for start in range(0, len(vm_ids), rows):
        window_ids = vm_ids[start:start + rows]
        yield window_ids, np.stack([series[vm_id] for vm_id in window_ids])


def per_vm_means(series: Mapping[str, np.ndarray],
                 rows: int = DEFAULT_CHUNK_ROWS) -> dict[str, float]:
    """Per-VM mean of every row, as ``float(row.mean())`` would give."""
    means: dict[str, float] = {}
    for vm_ids, window in iter_series_chunks(series, rows=rows):
        row_means = window.mean(axis=1)
        for offset, vm_id in enumerate(vm_ids):
            means[vm_id] = float(row_means[offset])
    return means


def per_vm_totals(series: Mapping[str, np.ndarray],
                  rows: int = DEFAULT_CHUNK_ROWS) -> dict[str, float]:
    """Per-VM sum of every row, as ``float(row.sum())`` would give."""
    totals: dict[str, float] = {}
    for vm_ids, window in iter_series_chunks(series, rows=rows):
        row_totals = window.sum(axis=1)
        for offset, vm_id in enumerate(vm_ids):
            totals[vm_id] = float(row_totals[offset])
    return totals


def cpu_row_stats(series: Mapping[str, np.ndarray],
                  rows: int = DEFAULT_CHUNK_ROWS,
                  ) -> tuple[dict[str, float], dict[str, float],
                             dict[str, float]]:
    """Per-VM ``(mean, p95, cv)`` of the CPU rows in one chunked pass.

    Replicates :meth:`TraceDataset.mean_cpu
    <repro.trace.dataset.TraceDataset.mean_cpu>`, ``p95_max_cpu`` and
    ``cpu_cv`` exactly — including the float32-std-over-python-float
    division of the CV and its ``mean == 0`` guard.
    """
    means: dict[str, float] = {}
    p95s: dict[str, float] = {}
    cvs: dict[str, float] = {}
    for vm_ids, window in iter_series_chunks(series, rows=rows):
        row_means = window.mean(axis=1)
        row_p95s = np.percentile(window, 95, axis=1)
        row_stds = window.std(axis=1)
        for offset, vm_id in enumerate(vm_ids):
            mean = float(row_means[offset])
            means[vm_id] = mean
            p95s[vm_id] = float(row_p95s[offset])
            cvs[vm_id] = (0.0 if mean == 0.0
                          else float(row_stds[offset] / mean))
    return means, p95s, cvs


class StreamingHistogram:
    """A mergeable fixed-bin histogram for approximate tick quantiles.

    Covers ``[lo, hi]`` with ``bins`` equal-width bins (values outside
    are clamped into the edge bins).  Partial histograms built over
    disjoint chunks — or in different processes — merge by adding
    counts, so a platform-wide quantile over half a terabyte of
    readings needs ``bins`` integers of state.  :meth:`quantile`
    interpolates linearly inside the selected bin; the absolute error
    is at most one bin width, i.e. ``(hi - lo) / bins``.
    """

    def __init__(self, lo: float = 0.0, hi: float = 1.0,
                 bins: int = 4096) -> None:
        if bins <= 0:
            raise TraceError(f"bins must be positive, got {bins}")
        if not hi > lo:
            raise TraceError(f"empty histogram range [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.counts = np.zeros(self.bins, dtype=np.int64)

    @property
    def count(self) -> int:
        """Total number of values added."""
        return int(self.counts.sum())

    @property
    def bin_width(self) -> float:
        return (self.hi - self.lo) / self.bins

    def add(self, values: np.ndarray) -> None:
        """Fold an array of readings (any shape) into the histogram."""
        data = np.asarray(values).ravel()
        if data.size == 0:
            return
        scaled = (data.astype(np.float64) - self.lo) / (self.hi - self.lo)
        indexes = np.clip((scaled * self.bins).astype(np.int64),
                          0, self.bins - 1)
        self.counts += np.bincount(indexes, minlength=self.bins)

    def merge(self, other: "StreamingHistogram") -> None:
        """Add another sketch's counts; geometries must match.

        Raises:
            TraceError: on mismatched range or bin count.
        """
        if (other.lo, other.hi, other.bins) != (self.lo, self.hi, self.bins):
            raise TraceError(
                "cannot merge histograms with different geometry: "
                f"[{self.lo}, {self.hi}]/{self.bins} vs "
                f"[{other.lo}, {other.hi}]/{other.bins}")
        self.counts += other.counts

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 <= q <= 1``) of the values.

        Raises:
            TraceError: on an out-of-range ``q`` or an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise TraceError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            raise TraceError("quantile of an empty histogram")
        target = q * total
        cumulative = np.cumsum(self.counts)
        bin_index = int(np.searchsorted(cumulative, target))
        if bin_index >= self.bins:
            return self.hi
        # A target landing in a run of empty bins (e.g. q=0 with all
        # mass far above lo) must report from the first occupied bin,
        # or the one-bin-width error bound would not hold.
        while bin_index < self.bins - 1 and not self.counts[bin_index]:
            bin_index += 1
        below = int(cumulative[bin_index - 1]) if bin_index else 0
        inside = int(self.counts[bin_index])
        fraction = ((target - below) / inside) if inside else 0.0
        return self.lo + (bin_index + fraction) * self.bin_width
