"""§4.3 analyses: load balance across servers, sites, and an app's VMs.

Covers Figure 11 (normalised CPU/bandwidth usage across the machines of
one site and the sites of one province), Figure 12 (weekly-averaged
bandwidth of sample VMs), and Figure 13 (the per-app cross-VM usage gap).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceError
from ..trace.dataset import TraceDataset, merge_days
from .chunks import per_vm_means
from .stats import ECDF, fairness_index, quantile_ratio


@dataclass(frozen=True)
class ImbalanceView:
    """One Figure 11 panel: normalised usage over a set of units."""

    label: str                      # e.g. "machines/cpu", "sites/bw"
    unit_ids: tuple[str, ...]
    normalized_usage: np.ndarray    # each unit / the smallest non-zero unit

    @property
    def max_gap(self) -> float:
        """Largest-over-smallest usage (the paper's headline gaps)."""
        return float(self.normalized_usage.max())

    @property
    def fairness(self) -> float:
        """Jain's fairness index of the usage allocation (1.0 = even)."""
        return fairness_index(self.normalized_usage)


def _normalize(values: np.ndarray, floor: float = 1e-9) -> np.ndarray:
    positive = values[values > floor]
    if positive.size == 0:
        raise TraceError("all units have zero usage")
    return values / positive.min()


def machine_imbalance(dataset: TraceDataset, site_id: str,
                      metric: str) -> ImbalanceView:
    """Figure 11(a)/(c): usage across the machines of one site.

    ``metric`` is ``"cpu"`` (requested-core-weighted mean usage) or
    ``"bw"`` (summed bandwidth).

    Raises:
        TraceError: for an unknown metric or a site with no loaded servers.
    """
    server_ids = sorted({vm.server_id for vm in dataset.vms_on_site(site_id)})
    if not server_ids:
        raise TraceError(f"site {site_id!r} hosts no VMs")
    if metric == "cpu":
        values = np.array([
            float(dataset.server_cpu_usage(s).mean()) for s in server_ids
        ])
    elif metric == "bw":
        values = np.array([
            float(dataset.server_bandwidth(s).mean()) for s in server_ids
        ])
    else:
        raise TraceError(f"unknown metric {metric!r}")
    return ImbalanceView(
        label=f"machines/{metric}",
        unit_ids=tuple(server_ids),
        normalized_usage=_normalize(values),
    )


def site_imbalance(dataset: TraceDataset, province: str,
                   metric: str, max_sites: int = 11,
                   rng: np.random.Generator | None = None) -> ImbalanceView:
    """Figure 11(b)/(d): usage across (sampled) sites of one province.

    The paper samples 11 sites from Guangdong; ``max_sites`` mirrors that.
    """
    province_sites = sorted(
        site_id for site_id, record in dataset.sites.items()
        if record.province == province and dataset.vms_on_site(site_id)
    )
    if not province_sites:
        raise TraceError(f"no loaded sites in province {province!r}")
    if len(province_sites) > max_sites:
        if rng is None:
            province_sites = province_sites[:max_sites]
        else:
            idx = rng.choice(len(province_sites), size=max_sites,
                             replace=False)
            province_sites = [province_sites[int(i)] for i in sorted(idx)]
    if metric == "cpu":
        values = []
        for site_id in province_sites:
            server_ids = sorted({vm.server_id
                                 for vm in dataset.vms_on_site(site_id)})
            usage = np.mean([
                float(dataset.server_cpu_usage(s).mean()) for s in server_ids
            ])
            values.append(usage)
        values = np.array(values)
    elif metric == "bw":
        values = np.array([
            float(dataset.site_bandwidth(s).mean()) for s in province_sites
        ])
    else:
        raise TraceError(f"unknown metric {metric!r}")
    return ImbalanceView(
        label=f"sites/{metric}",
        unit_ids=tuple(province_sites),
        normalized_usage=_normalize(values),
    )


@dataclass(frozen=True)
class WeeklyBandwidthView:
    """Figure 12: weekly-averaged bandwidth of a handful of VMs."""

    vm_ids: tuple[str, ...]
    weekly_mbps: dict[str, np.ndarray]

    def variability(self, vm_id: str) -> float:
        """CV of the weekly averages: high = 'dramatic and unpredictable'."""
        series = self.weekly_mbps[vm_id]
        mean = float(series.mean())
        if mean == 0.0:
            return 0.0
        return float(series.std() / mean)


def weekly_bandwidth_view(dataset: TraceDataset, vm_ids: list[str],
                          ) -> WeeklyBandwidthView:
    """Collapse selected VMs' bandwidth to weekly averages (Figure 12).

    Raises:
        TraceError: if a VM is unknown or the trace is shorter than a week.
    """
    weeks = dataset.trace_days // 7
    if weeks < 1:
        raise TraceError("trace shorter than one week")
    points_per_week = 7 * dataset.bw_points_per_day
    weekly = {}
    for vm_id in vm_ids:
        if vm_id not in dataset.bw_series:
            raise TraceError(f"unknown VM {vm_id!r}")
        series = dataset.bw_series[vm_id][: weeks * points_per_week]
        weekly[vm_id] = series.reshape(weeks, points_per_week).mean(axis=1)
    return WeeklyBandwidthView(vm_ids=tuple(vm_ids), weekly_mbps=weekly)


@dataclass(frozen=True)
class AppBalanceSummary:
    """Figure 13(a): cross-VM usage gap per app on one platform."""

    platform: str
    gaps_cdf: ECDF
    fraction_above_50x: float
    app_count: int


def app_balance_summary(dataset: TraceDataset,
                        min_vms: int = 3) -> AppBalanceSummary:
    """The per-app usage-gap distribution (P95/P5 of per-VM mean CPU).

    Apps with fewer than ``min_vms`` placed VMs cannot exhibit a
    meaningful gap and are excluded, as a plot over apps "using multiple
    VMs" implies.  Per-VM means come from one chunked pass over the CPU
    series, so the analysis works unchanged on an out-of-core trace.
    """
    mean_map = per_vm_means(dataset.cpu_series)
    gaps = []
    for app_id in dataset.app_ids_with_vms():
        vms = dataset.vms_of_app(app_id)
        if len(vms) < min_vms:
            continue
        means = [mean_map[vm.vm_id] for vm in vms]
        gaps.append(quantile_ratio(means, floor=1e-4))
    if not gaps:
        raise TraceError(f"no apps with >= {min_vms} VMs")
    gaps_array = np.array(gaps)
    return AppBalanceSummary(
        platform=dataset.platform_name,
        gaps_cdf=ECDF.from_samples(gaps_array),
        fraction_above_50x=float(np.mean(gaps_array > 50.0)),
        app_count=int(gaps_array.size),
    )


def hottest_app_day_view(dataset: TraceDataset, app_id: str,
                         day_index: int = 0,
                         max_vms: int = 11) -> dict[str, np.ndarray]:
    """Figure 13(b): one day of CPU usage for up to 11 VMs of one app.

    Raises:
        TraceError: for an unknown app or out-of-range day.
    """
    if day_index < 0 or day_index >= dataset.trace_days:
        raise TraceError(f"day {day_index} outside trace of "
                         f"{dataset.trace_days} days")
    vms = dataset.vms_of_app(app_id)[:max_vms]
    if not vms:
        raise TraceError(f"app {app_id!r} has no VMs")
    per_day = dataset.cpu_points_per_day
    start = day_index * per_day
    return {
        vm.vm_id: dataset.cpu_series[vm.vm_id][start:start + per_day].copy()
        for vm in vms
    }


def find_unbalanced_app(dataset: TraceDataset, min_vms: int = 8) -> str:
    """The app with the widest cross-VM gap among apps with many VMs.

    Used by the Figure 13(b) bench to pick its showcase app.
    """
    mean_map = per_vm_means(dataset.cpu_series)
    best_app, best_gap = None, -1.0
    for app_id in dataset.app_ids_with_vms():
        vms = dataset.vms_of_app(app_id)
        if len(vms) < min_vms:
            continue
        means = [mean_map[vm.vm_id] for vm in vms]
        gap = quantile_ratio(means, floor=1e-4)
        if gap > best_gap:
            best_app, best_gap = app_id, gap
    if best_app is None:
        raise TraceError(f"no app with >= {min_vms} VMs")
    return best_app
