"""The six what-if ablations, extracted as library functions.

Each ablation used to live only inside a ``benchmarks/`` module; the
sweep orchestrator (:mod:`repro.sweep`) needs them callable as ordinary
analyses so one ``repro sweep run`` can regenerate the whole campaign.
Every function takes an :class:`~repro.study.EdgeStudy` and returns an
:class:`AblationOutcome` whose :attr:`~AblationOutcome.text` matches the
historical benchmark output byte for byte — EXPERIMENTS.md extraction
and the benchmark assertions both key off that rendering.

Ablations that do not need the study's datasets (growth, placement)
still derive their scenario from the study's seed, so a sweep cell's
seed axis reaches every ablation uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..config import Scenario
from ..geo import CHINA_CITIES, place_edge_sites
from ..netsim.access import AccessType
from ..netsim.latency import LatencyModel
from ..netsim.routing import TargetSiteSpec, UESpec, build_route
from ..platform.entities import App, Customer
from ..platform.growth import simulate_growth
from ..platform.nep import build_nep_platform
from ..platform.placement import (
    BestFitPolicy,
    NepPlacementPolicy,
    RandomPolicy,
    SubscriptionRequest,
)
from ..platform.scheduling import LoadAwareScheduler, NearestSiteScheduler
from ..platform.serverless import FunctionSpec, compare_vm_vs_faas
from ..workload.subscription import sample_nep_spec
from .report import PaperComparison, check_ordering, comparison_block, format_table

#: Site counts swept by the density ablation (cloud-like -> beyond NEP).
DENSITY_SITE_COUNTS = (12, 60, 250, 520, 1000)
_DENSITY_USERS = 40

_MEC_USERS = 30
#: 5GAA end-to-end budget the paper cites for automated driving.
AUTO_DRIVING_BUDGET_MS = 10.0

_GROWTH_EPOCHS = 6
_GROWTH_REQUESTS = 12

_PLACEMENT_REQUESTS = 40
_SCHEDULING_REQUESTS = 400

_FAAS_SPEC = FunctionSpec(name="api-backend", memory_mb=512, exec_ms=60.0,
                          cold_start_ms=450.0)
_VM_MONTHLY_RMB = 260.0   # right-sized 2C/8G-class NEP VM
_VM_CAPACITY_RPS = 50.0
_DUTY_HOURS = (1, 3, 6, 12, 24)


@dataclass(frozen=True)
class AblationOutcome:
    """One ablation's rendered report plus machine-readable results.

    ``tables`` are the pre-rendered fixed-width tables (one or more),
    ``checks`` the qualitative paper-vs-measured assertions, and
    ``metrics`` a flat name -> float mapping the sweep report diffs
    across cells.
    """

    name: str
    tables: tuple[str, ...]
    checks: tuple[PaperComparison, ...]
    metrics: dict[str, float]
    block_title: str

    @property
    def text(self) -> str:
        """Tables followed by the check block — the benchmark rendering."""
        parts = list(self.tables)
        parts.append(comparison_block(self.block_title, list(self.checks)))
        return "\n\n".join(parts)

    @property
    def holds(self) -> bool:
        """True when every qualitative check passed."""
        return all(c.holds for c in self.checks)

    @property
    def checks_ok(self) -> int:
        """How many checks passed."""
        return sum(1 for c in self.checks if c.holds)


def _median_nearest_rtt(site_count: int, rng) -> float:
    sites = place_edge_sites(site_count, rng)
    model = LatencyModel(rng)
    medians = []
    for _ in range(_DENSITY_USERS):
        home = CHINA_CITIES[int(rng.integers(0, len(CHINA_CITIES)))]
        location = home.location.jitter(float(rng.uniform(-0.15, 0.15)),
                                        float(rng.uniform(-0.15, 0.15)))
        ue = UESpec("user", location, AccessType.WIFI)
        nearest = sorted(sites,
                         key=lambda s: s.location.distance_km(location))[:3]
        rtts = []
        for site in nearest:
            route = build_route(
                ue, TargetSiteSpec("edge", site.location, True), rng)
            rtts.append(float(model.sample_many(route, 10).mean()))
        medians.append(min(rtts))
    return float(np.median(medians))


def run_density_ablation(study) -> AblationOutcome:
    """Sweep deployment density and measure the nearest-edge RTT (§3.1/§5)."""
    rng = study.scenario.random.stream("ablation-density")
    rtts = {count: _median_nearest_rtt(count, rng)
            for count in DENSITY_SITE_COUNTS}

    rows = [(count, rtt) for count, rtt in rtts.items()]
    values = [rtts[c] for c in DENSITY_SITE_COUNTS]
    checks = (
        check_ordering("denser deployment lowers the nearest-edge RTT",
                       "RTT non-increasing in site count (to noise)",
                       values[0] > values[-1]
                       and values[1] >= values[-1] - 1.0,
                       " -> ".join(f"{v:.1f}" for v in values)),
        check_ordering("cloud-like density cannot reach edge latency",
                       "12 sites >= 1.3x the RTT of 520 sites",
                       values[0] >= 1.3 * rtts[520],
                       f"{values[0]:.1f} vs {rtts[520]:.1f} ms"),
        check_ordering("diminishing returns past NEP's density",
                       "520 -> 1000 sites saves < 520's absolute RTT x25%",
                       rtts[520] - rtts[1000] < 0.25 * rtts[520],
                       f"saving {rtts[520] - rtts[1000]:.1f} ms"),
        check_ordering("even 1000 sites stay above the MEC vision",
                       "WiFi floor: access+metro ~ 12 ms",
                       rtts[1000] > 10.0, f"{rtts[1000]:.1f} ms"),
    )
    table = format_table(["sites", "median nearest-edge RTT (ms)"], rows,
                         title="Ablation — deployment density (WiFi)")
    metrics = {f"rtt_ms_{count}_sites": rtt for count, rtt in rtts.items()}
    return AblationOutcome("density", (table,), checks, metrics,
                           "Density ablation")


def run_growth_ablation(study) -> AblationOutcome:
    """Replay NEP's build-out vs a static counterfactual (§4.3)."""
    scenario = Scenario.smoke_scale().with_overrides(
        seed=study.scenario.seed)
    grown = simulate_growth(scenario, epochs=_GROWTH_EPOCHS,
                            initial_fraction=0.2,
                            requests_per_epoch=_GROWTH_REQUESTS)
    static = simulate_growth(scenario, epochs=_GROWTH_EPOCHS,
                             initial_fraction=1.0,
                             requests_per_epoch=_GROWTH_REQUESTS)

    rows = [(e.index, e.active_sites, e.placed_vms, e.skew,
             static.epochs[e.index].skew)
            for e in grown.epochs]
    growth_table = format_table(
        ["epoch", "active sites", "VMs", "skew (growth)",
         "skew (static)"], rows,
        title="Ablation — build-out vs static deployment")

    by_epoch = grown.rate_by_activation_epoch()
    age_table = format_table(
        ["activation epoch", "mean final sales rate"],
        [(epoch, rate) for epoch, rate in by_epoch.items()],
        title="Sales rate by site age (growth run)")

    first, last = by_epoch[0], by_epoch[max(by_epoch)]
    checks = (
        check_ordering("growth amplifies across-site skew",
                       "final skew above the static counterfactual",
                       grown.final_skew > static.final_skew,
                       f"{grown.final_skew:.0f}x vs "
                       f"{static.final_skew:.0f}x"),
        check_ordering("young sites sit near-empty",
                       "day-one sites outsell the newest cohort",
                       first > 3 * max(last, 1e-6),
                       f"{first:.4f} vs {last:.4f} mean sales rate"),
        check_ordering("skew grows while the platform builds out",
                       "later epochs more skewed than the first",
                       grown.epochs[-1].skew > grown.epochs[0].skew,
                       f"{grown.epochs[0].skew:.0f}x -> "
                       f"{grown.epochs[-1].skew:.0f}x"),
    )
    metrics = {
        "final_skew_growth": float(grown.final_skew),
        "final_skew_static": float(static.final_skew),
        "day_one_sales_rate": float(first),
        "newest_cohort_sales_rate": float(last),
    }
    return AblationOutcome("growth", (growth_table, age_table), checks,
                           metrics, "Growth ablation")


def _median_rtts(study, access, rng):
    """(median nearest-NEP RTT, median MEC RTT) for one access type."""
    platform = study.nep.platform
    model = LatencyModel(rng)
    nep_rtts, mec_rtts = [], []
    for _ in range(_MEC_USERS):
        home = CHINA_CITIES[int(rng.integers(0, len(CHINA_CITIES)))]
        location = home.location.jitter(float(rng.uniform(-0.1, 0.1)),
                                        float(rng.uniform(-0.1, 0.1)))
        ue = UESpec("user", location, access)
        best = None
        for site in platform.nearest_sites(location, count=3):
            route = build_route(
                ue, TargetSiteSpec(site.site_id, site.location, True), rng)
            rtt = float(model.sample_many(route, 10).mean())
            best = rtt if best is None else min(best, rtt)
        nep_rtts.append(best)
        mec_route = build_route(
            ue, TargetSiteSpec("mec", location, True,
                               colocated_with_access=True), rng)
        mec_rtts.append(float(model.sample_many(mec_route, 10).mean()))
    return float(np.median(nep_rtts)), float(np.median(mec_rtts))


def run_mec_ablation(study) -> AblationOutcome:
    """Deploy a hypothetical access-co-located MEC server (§3.1/§5)."""
    rng = study.scenario.random.stream("ablation-mec")
    results = {access: _median_rtts(study, access, rng)
               for access in (AccessType.WIFI, AccessType.LTE,
                              AccessType.FIVE_G)}

    rows = [(access.value, nep, mec, nep - mec,
             "yes" if mec <= AUTO_DRIVING_BUDGET_MS else "no")
            for access, (nep, mec) in results.items()]
    wifi_nep, wifi_mec = results[AccessType.WIFI]
    lte_nep, lte_mec = results[AccessType.LTE]
    five_g_nep, five_g_mec = results[AccessType.FIVE_G]
    checks = (
        check_ordering("today's NEP misses the 10 ms auto-driving budget",
                       "nearest NEP > 10 ms on every access",
                       all(nep > AUTO_DRIVING_BUDGET_MS
                           for nep, _ in results.values()),
                       " / ".join(f"{a.value}: {nep:.1f} ms"
                                  for a, (nep, _) in results.items())),
        check_ordering("MEC strictly improves on NEP",
                       "co-located server faster everywhere",
                       all(mec < nep for nep, mec in results.values()),
                       " / ".join(f"{a.value}: -{nep - mec:.1f} ms"
                                  for a, (nep, mec) in results.items())),
        check_ordering("WiFi gains the most from MEC",
                       "metro core removed (~40% of WiFi RTT)",
                       (wifi_nep - wifi_mec) > (five_g_nep - five_g_mec),
                       f"WiFi -{wifi_nep - wifi_mec:.1f} ms vs 5G "
                       f"-{five_g_nep - five_g_mec:.1f} ms"),
        check_ordering("LTE stays above the budget even with MEC",
                       "the 26 ms packet core is the floor",
                       lte_mec > AUTO_DRIVING_BUDGET_MS,
                       f"{lte_mec:.1f} ms"),
        check_ordering("MEC approaches the budget on WiFi/5G",
                       "within ~2 ms of the 10 ms line",
                       wifi_mec <= 12.0 and five_g_mec <= 12.0,
                       f"WiFi {wifi_mec:.1f} / 5G {five_g_mec:.1f} ms"),
    )
    table = format_table(["access", "nearest NEP (ms)", "MEC (ms)",
                          "saving (ms)", "meets 10 ms budget"], rows,
                         title="Ablation — NEP today vs the MEC vision")
    metrics = {}
    for access, (nep, mec) in results.items():
        metrics[f"nep_rtt_ms_{access.value}"] = nep
        metrics[f"mec_rtt_ms_{access.value}"] = mec
    return AblationOutcome("mec", (table,), checks, metrics,
                           "MEC ablation")


def _run_placement_policy(scenario: Scenario, policy_factory):
    platform = build_nep_platform(scenario)
    rng = scenario.random.stream("ablation-placement")
    policy = policy_factory(rng)
    for index in range(_PLACEMENT_REQUESTS):
        customer = Customer(f"c{index}", f"cust-{index}")
        platform.register_customer(customer)
        platform.register_app(App(f"a{index}", customer.customer_id,
                                  "cdn", f"img{index}"))
        request = SubscriptionRequest(
            customer_id=customer.customer_id, app_id=f"a{index}",
            image_id=f"img{index}", spec=sample_nep_spec(rng),
            vm_count=int(rng.integers(2, 8)),
        )
        policy.place(platform, request)
    rates = np.array([s.cpu_sales_rate()
                      for s in platform.iter_servers()])
    used = int(np.count_nonzero(rates))
    loaded = rates[rates > 0]
    return {
        "servers_used": used,
        "load_std": float(loaded.std()),
        "max_load": float(loaded.max()),
        "vms": len(platform.vms),
    }


def run_placement_ablation(study) -> AblationOutcome:
    """NEP's low-usage-first placement vs best-fit and random (§2/§4.1)."""
    scenario = Scenario.smoke_scale().with_overrides(
        seed=study.scenario.seed, nep_site_count=30)
    results = {
        "nep-low-usage": _run_placement_policy(
            scenario, lambda rng: NepPlacementPolicy()),
        "best-fit": _run_placement_policy(
            scenario, lambda rng: BestFitPolicy()),
        "random": _run_placement_policy(
            scenario, lambda rng: RandomPolicy(rng)),
    }

    rows = [(name, r["vms"], r["servers_used"], r["load_std"],
             r["max_load"]) for name, r in results.items()]
    nep, best_fit = results["nep-low-usage"], results["best-fit"]
    checks = (
        check_ordering("NEP spreads load wider than best-fit",
                       "NEP uses more servers",
                       nep["servers_used"] > best_fit["servers_used"],
                       f"{nep['servers_used']} vs "
                       f"{best_fit['servers_used']} servers"),
        check_ordering("best-fit consolidates into hotter servers",
                       "best-fit max load above NEP's",
                       best_fit["max_load"] >= nep["max_load"],
                       f"{best_fit['max_load']:.2f} vs "
                       f"{nep['max_load']:.2f}"),
        check_ordering("NEP's loaded servers are more even",
                       "NEP per-server load std below best-fit's",
                       nep["load_std"] <= best_fit["load_std"],
                       f"{nep['load_std']:.3f} vs "
                       f"{best_fit['load_std']:.3f}"),
    )
    table = format_table(["policy", "VMs placed", "servers used",
                          "loaded-server std", "hottest server"], rows,
                         title="Ablation — placement policies")
    metrics = {}
    for name, r in results.items():
        slug = name.replace("-", "_")
        metrics[f"servers_used_{slug}"] = float(r["servers_used"])
        metrics[f"load_std_{slug}"] = r["load_std"]
        metrics[f"max_load_{slug}"] = r["max_load"]
    return AblationOutcome("placement", (table,), checks, metrics,
                           "Placement ablation")


def run_scheduling_ablation(study) -> AblationOutcome:
    """Nearest-site scheduling vs load-aware GSLB on the biggest app (§4.3)."""
    platform = study.nep.platform
    dataset = study.nep.dataset
    app_id = max(dataset.app_ids_with_vms(),
                 key=lambda a: len(dataset.vms_of_app(a)))
    rng = study.scenario.random.stream("ablation-scheduling")

    nearest = NearestSiteScheduler()
    load_state = {vm.vm_id: 0.0
                  for vm in platform.vms_of_app(app_id)}
    gslb = LoadAwareScheduler(load=lambda v: load_state[v],
                              detour_km=300.0, overload=0.8)
    nearest_hits: dict[str, int] = {}
    gslb_hits: dict[str, int] = {}
    nearest_km, gslb_km = [], []
    for _ in range(_SCHEDULING_REQUESTS):
        user = CHINA_CITIES[
            int(rng.integers(0, len(CHINA_CITIES)))].location
        n = nearest.schedule(platform, app_id, user)
        nearest_hits[n.vm_id] = nearest_hits.get(n.vm_id, 0) + 1
        nearest_km.append(n.distance_km)
        g = gslb.schedule(platform, app_id, user)
        gslb_hits[g.vm_id] = gslb_hits.get(g.vm_id, 0) + 1
        gslb_km.append(g.distance_km)
        load_state[g.vm_id] += 1.0 / _SCHEDULING_REQUESTS * 10

    hotspot_nearest = max(nearest_hits.values())
    hotspot_gslb = max(gslb_hits.values())
    detour = float(np.mean(gslb_km)) - float(np.mean(nearest_km))
    rows = [
        ("hottest VM (requests)", hotspot_nearest, hotspot_gslb),
        ("VMs serving traffic", len(nearest_hits), len(gslb_hits)),
        ("mean user-VM distance (km)", float(np.mean(nearest_km)),
         float(np.mean(gslb_km))),
    ]
    checks = (
        check_ordering("GSLB flattens the hotspot",
                       "hottest VM serves far fewer requests",
                       hotspot_gslb < 0.6 * hotspot_nearest,
                       f"{hotspot_nearest} -> {hotspot_gslb}"),
        check_ordering("GSLB engages more of the fleet",
                       "more VMs serve traffic",
                       len(gslb_hits) > len(nearest_hits),
                       f"{len(nearest_hits)} -> {len(gslb_hits)}"),
        check_ordering("the detour stays bounded",
                       "mean extra distance under the 300 km budget",
                       0 <= detour <= 300.0,
                       f"+{detour:.0f} km on average"),
    )
    table = format_table(["metric", "nearest-site", "load-aware GSLB"],
                         rows,
                         title=f"Ablation — request scheduling "
                               f"(app {app_id})")
    metrics = {
        "hotspot_requests_nearest": float(hotspot_nearest),
        "hotspot_requests_gslb": float(hotspot_gslb),
        "serving_vms_nearest": float(len(nearest_hits)),
        "serving_vms_gslb": float(len(gslb_hits)),
        "mean_detour_km": detour,
    }
    return AblationOutcome("scheduling", (table,), checks, metrics,
                           "Scheduling ablation")


def run_serverless_ablation(study) -> AblationOutcome:
    """Reserved-VM vs FaaS crossover over the daily duty cycle (§5)."""
    rng = study.scenario.random.stream("ablation-faas")
    results = {}
    for hours in _DUTY_HOURS:
        rate = np.zeros(48)
        windows = hours * 2  # half-hour windows
        rate[:windows] = 40.0
        results[hours] = compare_vm_vs_faas(
            rate, window_s=1800.0, spec=_FAAS_SPEC,
            vm_monthly_rmb=_VM_MONTHLY_RMB,
            vm_capacity_rps=_VM_CAPACITY_RPS, rng=rng)

    rows = [
        (hours, _VM_MONTHLY_RMB, r.faas_monthly_rmb,
         "FaaS" if r.faas_cheaper else "VM",
         r.faas_p95_latency_ms)
        for hours, r in results.items()
    ]
    faas_costs = [results[h].faas_monthly_rmb for h in _DUTY_HOURS]
    checks = [
        check_ordering("FaaS cost scales with duty cycle",
                       "monotone in active hours",
                       faas_costs == sorted(faas_costs),
                       " -> ".join(f"{c:.0f}" for c in faas_costs)),
        check_ordering("bursty apps favour FaaS",
                       "1-3 active hours/day cheaper on FaaS",
                       results[1].faas_cheaper and results[3].faas_cheaper,
                       f"1h: {results[1].faas_monthly_rmb:.0f} RMB, "
                       f"3h: {results[3].faas_monthly_rmb:.0f} RMB vs "
                       f"VM {_VM_MONTHLY_RMB:.0f}"),
        check_ordering("steady apps favour the reserved VM",
                       "24 active hours/day cheaper on the VM",
                       not results[24].faas_cheaper,
                       f"{results[24].faas_monthly_rmb:.0f} vs "
                       f"{_VM_MONTHLY_RMB:.0f} RMB"),
    ]
    # §5's latency caveat shows up on sparse traffic: with invocations
    # minutes apart, every request lands on an expired pool.
    sparse = compare_vm_vs_faas(
        np.full(48, 0.002), window_s=1800.0, spec=_FAAS_SPEC,
        vm_monthly_rmb=_VM_MONTHLY_RMB, vm_capacity_rps=_VM_CAPACITY_RPS,
        rng=rng, keep_alive_s=300.0)
    checks.append(check_ordering(
        "cold starts poison sparse-traffic latency",
        "FaaS p95 >> warm execution time (§5 caveat)",
        sparse.faas_p95_latency_ms > 3 * _FAAS_SPEC.exec_ms,
        f"p95 = {sparse.faas_p95_latency_ms:.0f} ms vs "
        f"{_FAAS_SPEC.exec_ms:.0f} ms warm "
        f"({sparse.faas_cold_start_fraction:.0%} cold)"))
    table = format_table(["active h/day", "VM (RMB/mo)", "FaaS (RMB/mo)",
                          "winner", "FaaS p95 (ms)"], rows,
                         title="Ablation — reserved VM vs serverless")
    metrics = {f"faas_rmb_{hours}h": results[hours].faas_monthly_rmb
               for hours in _DUTY_HOURS}
    metrics["sparse_faas_p95_ms"] = sparse.faas_p95_latency_ms
    return AblationOutcome("serverless", (table,), tuple(checks), metrics,
                           "Serverless ablation")


#: Ablation id -> runner, in the order the campaign reports them.
ABLATIONS: dict[str, Callable] = {
    "density": run_density_ablation,
    "growth": run_growth_ablation,
    "mec": run_mec_ablation,
    "placement": run_placement_ablation,
    "scheduling": run_scheduling_ablation,
    "serverless": run_serverless_ablation,
}
