"""Plain-text rendering of tables, CDF curves, and paper comparisons.

Every benchmark prints its figure/table through these helpers so the
output is uniform: a fixed-width table, an ASCII CDF sketch, and
"paper vs measured" rows that EXPERIMENTS.md collects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .stats import ECDF


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a fixed-width table with a header rule."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def sketch_cdf(cdf: ECDF, width: int = 50, label: str = "") -> str:
    """A one-line quantile sketch of a CDF (p5/p25/p50/p75/p95)."""
    quantiles = [cdf.quantile(q) for q in (0.05, 0.25, 0.50, 0.75, 0.95)]
    body = " | ".join(f"{q:.3g}" for q in quantiles)
    prefix = f"{label}: " if label else ""
    return f"{prefix}p5..p95 = [{body}] (n={len(cdf)})"


@dataclass(frozen=True)
class PaperComparison:
    """One paper-vs-measured check row."""

    metric: str
    paper_value: str
    measured_value: str
    holds: bool

    def render(self) -> str:
        status = "OK " if self.holds else "DIFF"
        return (f"[{status}] {self.metric}: paper={self.paper_value} "
                f"measured={self.measured_value}")


def comparison_block(title: str,
                     comparisons: Sequence[PaperComparison]) -> str:
    """Render a titled block of paper-vs-measured rows."""
    lines = [f"== {title} =="]
    lines.extend(c.render() for c in comparisons)
    agreeing = sum(1 for c in comparisons if c.holds)
    lines.append(f"-- {agreeing}/{len(comparisons)} checks hold --")
    return "\n".join(lines)


def check_ratio(metric: str, paper: float, measured: float,
                tolerance: float = 0.5) -> PaperComparison:
    """A comparison that holds when measured is within +-tolerance
    (relative) of the paper's value."""
    holds = paper != 0 and abs(measured - paper) / abs(paper) <= tolerance
    return PaperComparison(
        metric=metric,
        paper_value=f"{paper:.3g}",
        measured_value=f"{measured:.3g}",
        holds=bool(holds),
    )


def check_ordering(metric: str, description: str, holds: bool,
                   measured: str) -> PaperComparison:
    """A comparison about a qualitative ordering ("edge < cloud")."""
    return PaperComparison(
        metric=metric,
        paper_value=description,
        measured_value=measured,
        holds=holds,
    )


def cdf_to_rows(cdf: ECDF, points: int = 9) -> list[tuple[float, float]]:
    """(value, F(value)) rows for tabulating a CDF curve."""
    qs = np.linspace(0.1, 0.9, points)
    return [(cdf.quantile(float(q)), float(q)) for q in qs]
