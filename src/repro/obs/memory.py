"""Process-memory sampling for journal events.

A :class:`MemorySampler` answers one question cheaply: how much
resident memory does this process hold *now*, and what was its peak?
:class:`~repro.obs.journal.RunJournal` calls it at phase and run
boundaries so a journal shows where a run's memory went without any
external profiler.

On Linux the sampler parses ``/proc/self/status`` (``VmRSS`` /
``VmHWM``); elsewhere it falls back to :func:`resource.getrusage`,
which only reports the peak, and finally to zeros — sampling must never
be the thing that breaks a run.
"""

from __future__ import annotations

_PROC_STATUS = "/proc/self/status"

#: ``/proc`` field name -> journal field name.
_FIELDS = {"VmRSS": "rss_mb", "VmHWM": "peak_rss_mb"}


def _read_proc_status() -> dict[str, float] | None:
    """Parse VmRSS/VmHWM (in MiB) out of ``/proc/self/status``."""
    try:
        with open(_PROC_STATUS) as handle:
            lines = handle.read().splitlines()
    except OSError:
        return None
    sample: dict[str, float] = {}
    for line in lines:
        key, _, rest = line.partition(":")
        if key in _FIELDS:
            parts = rest.split()
            if parts and parts[0].isdigit():  # "<kB> kB"
                sample[_FIELDS[key]] = round(int(parts[0]) / 1024.0, 3)
    return sample if len(sample) == len(_FIELDS) else None


def _read_rusage() -> dict[str, float]:
    """Peak RSS via ``getrusage`` (current RSS is not available there)."""
    try:
        import resource

        peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception:  # pragma: no cover - non-POSIX platforms
        return {"rss_mb": 0.0, "peak_rss_mb": 0.0}
    # ru_maxrss is KiB on Linux, bytes on macOS; normalise heuristically.
    if peak_kb > 1 << 32:  # pragma: no cover - macOS byte counts
        peak_kb //= 1024
    peak_mb = round(peak_kb / 1024.0, 3)
    return {"rss_mb": peak_mb, "peak_rss_mb": peak_mb}


class MemorySampler:
    """Samples the current process's resident-set size.

    Instances are stateless apart from remembering which backend worked
    first, so one sampler can annotate every event of a journal.
    """

    def __init__(self) -> None:
        self._proc_ok = True

    def sample(self) -> dict[str, float]:
        """Return ``{"rss_mb": ..., "peak_rss_mb": ...}`` for this process."""
        if self._proc_ok:
            sample = _read_proc_status()
            if sample is not None:
                return sample
            self._proc_ok = False
        return _read_rusage()
