"""The run journal: a JSON-Lines event log of one study run.

Every event is one JSON object per line with three envelope fields —
``seq`` (a dense 0-based sequence number), ``t`` (Unix wall-clock
seconds), and ``type`` — plus type-specific payload fields.  The event
vocabulary is documented in ``docs/observability.md``; the emitters are
spread across the library (:class:`~repro.study.EdgeStudy`,
:class:`~repro.perf.PerfRegistry`, :class:`~repro.phases.PhaseLedger`,
:class:`~repro.cache.ArtifactCache`, :mod:`repro.parallel`,
:class:`~repro.measurement.campaign.CrowdCampaign`).

Determinism contract
--------------------

A journal must be a pure function of the scenario (and cache state),
*except* for the wall-clock-shaped fields listed in
:data:`VOLATILE_FIELDS` — timestamps, durations, memory samples, and
execution knobs like worker counts that change speed but not results.
:func:`canonical_events` strips them; the determinism suite asserts
that canonical journals are identical across repeats and ``--jobs``
settings.  Emitters must therefore never include host names, absolute
paths, PIDs, or iteration order that depends on completion timing in
any non-volatile field.

Write discipline
----------------

Like :class:`~repro.cache.ArtifactCache`, the journal never exposes a
half-written artifact under its final name: events are appended (and
flushed per line) to ``<path>.part`` while the run is live, and
:meth:`RunJournal.close` renames the staging file into place with
:func:`os.replace`.  A run killed mid-flight leaves a ``.part`` file —
still readable by ``repro trace``, whose reader tolerates a truncated
final line — and never a corrupt ``journal.jsonl``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable

from ..errors import ConfigurationError
from .memory import MemorySampler

#: Event fields that may differ between two runs of the same scenario:
#: wall-clock times, durations, memory samples, and execution knobs
#: (worker counts, host core counts) that affect speed, not results.
#: ``events`` (run_end's raw-event tally) counts volatile event types
#: too, which makes the tally itself transport-dependent.
VOLATILE_FIELDS = frozenset({
    "t", "wall_s", "cpu_s", "rss_mb", "peak_rss_mb", "bytes",
    "jobs", "workers", "cpu_count", "pid", "events",
})

#: Event *types* that exist only because of execution knobs — shard
#: spills (``--streaming``), shared-memory handoff telemetry
#: (``--jobs``/transport choice), and per-tick live-engine telemetry
#: (``live_tick``, one per simulated tick) — or because of *recovery*:
#: retries,
#: worker restarts, quarantines, and resume headers exist only when a
#: failpoint fired or the host misbehaved.  Recovery changes when work
#: happens, never what it produces, so the canonical view drops the
#: whole event rather than individual fields; that is what makes a
#: ``--chaos`` run canonicalize bit-identical to a clean one.
VOLATILE_EVENT_TYPES = frozenset({
    "chunk_spill", "shm_handoff", "session_chunk",
    "live_tick", "live_retry",
    "job_retry", "worker_restart", "job_quarantined",
    "cache_retry", "cache_write_error", "io_retry",
    "resume",
})

#: Default journal file name when a directory is given.
JOURNAL_NAME = "journal.jsonl"

#: Event types that get an automatic memory sample attached.
_SAMPLED_EVENTS = frozenset({"phase_end", "run_end"})


def canonical_events(events: list[dict]) -> list[dict]:
    """The deterministic view of a journal: volatile fields stripped.

    Two runs of the same scenario against the same cache state produce
    equal canonical event lists regardless of wall-clock, memory, or
    ``--jobs`` differences.  Volatile event types are dropped entirely
    and ``seq`` renumbered densely, so the canonical stream is also
    stable across transport choices that add telemetry events.
    """
    canonical = []
    for event in events:
        if event.get("type") in VOLATILE_EVENT_TYPES:
            continue
        kept = {key: value for key, value in event.items()
                if key not in VOLATILE_FIELDS}
        if "seq" in kept:
            kept["seq"] = len(canonical)
        canonical.append(kept)
    return canonical


def merge_cell_journal(journal: "RunJournal", cell: str,
                       events: list[dict]) -> dict:
    """Fold one cell's journal into a sweep-level journal.

    Re-emits a condensed view of the cell run — ``cell_start`` (seed and
    fault profile from the cell's ``run_start``), one ``cell_phase`` per
    ``phase_end`` (name, status, wall seconds), and ``cell_end``
    (status, error, perf counters from ``run_end``) — each tagged with
    the cell name.  The full per-cell journal stays on disk
    next to the cell's results; the sweep journal carries just enough to
    reconstruct the campaign timeline from one file.  Returns the
    ``cell_end`` event.
    """
    start = next((e for e in events if e.get("type") == "run_start"), None)
    end = next((e for e in reversed(events)
                if e.get("type") == "run_end"), None)
    header: dict[str, object] = {"cell": cell}
    if start is not None:
        header["seed"] = start.get("seed")
        header["fault_profile"] = start.get("fault_profile")
    journal.emit("cell_start", **header)
    for event in events:
        if event.get("type") != "phase_end":
            continue
        fields: dict[str, object] = {
            "cell": cell, "phase": event.get("phase"),
            "status": event.get("status", "ok"),
        }
        for key in ("wall_s", "error"):
            if key in event:
                fields[key] = event[key]
        journal.emit("cell_phase", **fields)
    footer: dict[str, object] = {
        "cell": cell,
        "status": end.get("status", "failed") if end else "failed",
    }
    if end is not None:
        if "error" in end:
            footer["error"] = end["error"]
        if "counters" in end:
            footer["counters"] = end["counters"]
        if "wall_s" in end:
            footer["wall_s"] = end["wall_s"]
    return journal.emit("cell_end", **footer)


class RunJournal:
    """Collects and persists the structured event stream of one run.

    ``path`` may be a file path, a run directory (the journal lands at
    ``<dir>/journal.jsonl``), or ``None`` for an in-memory journal
    (events are still accumulated in :attr:`events` — the form the
    benchmark harness uses).  ``echo`` is an optional callable invoked
    with each event dict as it is emitted; the CLI's ``-v`` wires it to
    a stderr printer.

    A journal is single-process and not thread-safe by design: worker
    processes report through :meth:`PerfRegistry.merge
    <repro.perf.PerfRegistry.merge>` and parent-side events instead of
    writing here directly, which is what keeps ``--jobs N`` journals
    identical to serial ones.
    """

    def __init__(self, path: str | Path | None, *,
                 echo: Callable[[dict], None] | None = None,
                 sampler: MemorySampler | None = None) -> None:
        self.events: list[dict] = []
        self.echo = echo
        self.closed = False
        self._seq = 0
        self._run_started = False
        self._sampler = sampler if sampler is not None else MemorySampler()
        self.path: Path | None = None
        self._staging: Path | None = None
        self._handle = None
        if path is not None:
            target = Path(path)
            if target.is_dir():
                target = target / JOURNAL_NAME
            target.parent.mkdir(parents=True, exist_ok=True)
            self.path = target
            self._staging = target.with_name(target.name + ".part")
            self._handle = self._staging.open("w", encoding="utf-8")

    # ---- emission --------------------------------------------------------

    def emit(self, etype: str, **fields: object) -> dict:
        """Append one event; returns the completed event dict.

        Envelope fields (``seq``, ``t``, ``type``) are added here, and
        phase-end / run-end events get a memory sample attached, so
        emitters only supply their payload.
        """
        if self.closed:
            raise ConfigurationError(
                f"journal is closed; cannot emit {etype!r}")
        event: dict[str, object] = {
            "seq": self._seq, "t": round(time.time(), 6), "type": etype,
        }
        event.update(fields)
        if etype in _SAMPLED_EVENTS:
            event.update(self._sampler.sample())
        self._seq += 1
        self.events.append(event)
        if self._handle is not None:
            self._handle.write(json.dumps(event, separators=(",", ":"))
                               + "\n")
            self._handle.flush()
        if self.echo is not None:
            self.echo(event)
        return event

    def warn(self, message: str, **fields: object) -> dict:
        """Emit a ``warning`` event (the journal's printf)."""
        return self.emit("warning", message=str(message), **fields)

    def run_start(self, scenario, **extra: object) -> dict:
        """Emit the ``run_start`` header: full scenario + provenance.

        Records every scenario knob (via
        :meth:`~repro.config.Scenario.cache_token`), the seed and fault
        profile redundantly at top level, and the installed code
        version, so a journal pins exactly what produced a run.  Extra
        keyword fields (``jobs``, ...) ride along.  Idempotent: only the
        first call emits.
        """
        if self._run_started:
            return self.events[0]
        self._run_started = True
        from ..cache import code_version  # local: keeps obs import-light

        return self.emit(
            "run_start",
            scenario=json.loads(scenario.cache_token()),
            seed=scenario.seed,
            fault_profile=scenario.fault_profile,
            code_version=code_version(),
            pid=os.getpid(),
            cpu_count=os.cpu_count(),
            **extra,
        )

    # ---- lifecycle -------------------------------------------------------

    def close(self, status: str = "ok", error: str | None = None,
              counters: dict[str, int] | None = None) -> None:
        """Emit ``run_end`` and atomically publish the journal file.

        ``status`` is ``"ok"`` or ``"failed"`` (with ``error`` carrying
        the failure one-liner); ``counters`` is the run's final
        :attr:`PerfRegistry.counters <repro.perf.PerfRegistry.counters>`
        view.  Idempotent — the first call wins.
        """
        if self.closed:
            return
        fields: dict[str, object] = {"status": status,
                                     "events": self._seq + 1}
        if error is not None:
            fields["error"] = str(error)
        if counters is not None:
            fields["counters"] = dict(sorted(counters.items()))
        self.emit("run_end", **fields)
        self.closed = True
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
            # Same discipline as ArtifactCache: the final name only ever
            # names a complete journal.
            os.replace(self._staging, self.path)

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close("ok")
        else:
            self.close("failed", error=f"{exc_type.__name__}: {exc}")
