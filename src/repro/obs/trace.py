"""Reading and rendering run journals (`repro trace ...`).

The reader is deliberately forgiving: journals from crashed runs end in
a truncated line, hand-edited ones may carry corrupt lines, and a
``.part`` staging file is still useful evidence.  :func:`read_journal`
therefore yields every parseable event and a warning per skipped line
instead of raising, and every renderer downstream copes with a missing
``run_start``/``run_end``.

Three renderers back the CLI subcommand:

* :func:`render_show` — the raw event stream, one line per event;
* :func:`render_summary` — the phase/timing/memory tree with cache,
  pool, fault, and counter roll-ups;
* :func:`diff_journals` — two runs compared: phase timings, cache
  behaviour, and event counts side by side.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Envelope fields hidden from the per-event key=value rendering.
_ENVELOPE = ("seq", "t", "type")


def read_journal(path: str | Path) -> tuple[list[dict], list[str]]:
    """Parse a journal file into ``(events, warnings)``.

    Unparseable lines are skipped with a warning — a truncated final
    line (the signature of a killed run) is reported as such rather
    than as corruption.  Raises :class:`FileNotFoundError` only when
    the file itself is missing.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8", errors="replace")
    events: list[dict] = []
    warnings: list[str] = []
    lines = text.splitlines()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines):
                warnings.append(
                    f"line {number}: truncated final line "
                    "(run killed mid-write?)")
            else:
                warnings.append(f"line {number}: corrupt event skipped")
            continue
        if isinstance(event, dict):
            events.append(event)
        else:
            warnings.append(f"line {number}: non-object event skipped")
    if events and events[-1].get("type") != "run_end":
        warnings.append("journal has no run_end event "
                        "(run did not finish cleanly)")
    return events, warnings


# ---- summarising ---------------------------------------------------------


@dataclass
class JournalSummary:
    """Everything ``repro trace summary`` renders, as plain data."""

    run: dict = field(default_factory=dict)        # run_start payload
    end: dict = field(default_factory=dict)        # run_end payload
    phases: dict[str, dict] = field(default_factory=dict)
    spans: dict[str, dict] = field(default_factory=dict)
    cache: dict[str, list[dict]] = field(default_factory=dict)
    pool: dict[str, int] = field(default_factory=dict)
    faults: dict | None = None
    probe_stats: dict[str, dict] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)
    event_counts: dict[str, int] = field(default_factory=dict)
    live: dict = field(default_factory=dict)       # live_summary payload
    live_faults: list[dict] = field(default_factory=list)

    @property
    def status(self) -> str:
        """The run's final status (``unknown`` without a run_end)."""
        return str(self.end.get("status", "unknown"))


def phase_breakdown(events: list[dict]) -> dict[str, dict]:
    """Per-phase timings/outcome/memory, merged from three event kinds.

    ``phase_end`` carries status, wall time, and the memory samples;
    the matching ``span_end`` (same name) contributes CPU time; a
    ``cache_hit`` whose artifact equals the phase name marks the phase
    as served from the artifact cache.
    """
    phases: dict[str, dict] = {}
    cpu: dict[str, float] = {}
    hits = {e.get("artifact") for e in events if e.get("type") == "cache_hit"}
    for event in events:
        etype = event.get("type")
        if etype == "phase_begin":
            phases.setdefault(str(event.get("phase")), {"status": "running"})
        elif etype == "phase_end":
            name = str(event.get("phase"))
            entry = phases.setdefault(name, {})
            entry["status"] = event.get("status", "?")
            for key in ("wall_s", "rss_mb", "peak_rss_mb", "error"):
                if key in event:
                    entry[key] = event[key]
            entry["cached"] = name in hits
        elif etype == "span_end":
            name = str(event.get("span"))
            cpu[name] = cpu.get(name, 0.0) + float(event.get("cpu_s", 0.0))
    for name, entry in phases.items():
        if name in cpu:
            entry["cpu_s"] = round(cpu[name], 6)
    return phases


def summarize_journal(events: list[dict],
                      warnings: list[str] | None = None) -> JournalSummary:
    """Fold an event stream into a :class:`JournalSummary`."""
    summary = JournalSummary(warnings=list(warnings or []))
    summary.phases = phase_breakdown(events)
    cache: dict[str, list[dict]] = {
        "hit": [], "miss": [], "store": [], "evict": []}
    pool = {"dispatched": 0, "completed": 0, "vms": 0}
    for event in events:
        etype = str(event.get("type"))
        summary.event_counts[etype] = summary.event_counts.get(etype, 0) + 1
        payload = {k: v for k, v in event.items() if k not in _ENVELOPE}
        if etype == "run_start":
            summary.run = payload
        elif etype == "run_end":
            summary.end = payload
        elif etype.startswith("cache_"):
            kind = etype.removeprefix("cache_")
            if kind in cache:
                cache[kind].append(payload)
        elif etype == "job_dispatch":
            pool["dispatched"] += 1
        elif etype == "job_complete":
            pool["completed"] += 1
            pool["vms"] += int(event.get("vms", 0))
        elif etype == "fault_schedule":
            summary.faults = payload
        elif etype == "live_summary":
            summary.live = payload
        elif etype == "live_fault":
            summary.live_faults.append(payload)
        elif etype == "probe_stats":
            summary.probe_stats[str(payload.get("probe", "?"))] = payload
        elif etype == "warning":
            summary.warnings.append(str(event.get("message", "")))
        elif etype == "span_end":
            name = str(event.get("span"))
            span = summary.spans.setdefault(
                name, {"wall_s": 0.0, "cpu_s": 0.0, "calls": 0})
            span["wall_s"] = round(span["wall_s"]
                                   + float(event.get("wall_s", 0.0)), 6)
            span["cpu_s"] = round(span["cpu_s"]
                                  + float(event.get("cpu_s", 0.0)), 6)
            span["calls"] += 1
    summary.cache = cache
    summary.pool = pool
    return summary


# ---- rendering -----------------------------------------------------------


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, dict):
        return "{" + ",".join(sorted(value)) + "}"
    return str(value)


def render_show(events: list[dict], limit: int | None = None) -> str:
    """The raw stream: ``[seq] +elapsed type key=value ...`` per event."""
    if not events:
        return "(empty journal)"
    start = None
    for event in events:
        if "t" in event:
            start = float(event["t"])
            break
    lines = []
    shown = events if limit is None else events[-limit:]
    if limit is not None and len(events) > limit:
        lines.append(f"... {len(events) - limit} earlier events elided ...")
    for event in shown:
        elapsed = (float(event.get("t", start or 0.0)) - start
                   if start is not None else 0.0)
        payload = " ".join(
            f"{key}={_fmt_value(value)}" for key, value in event.items()
            if key not in _ENVELOPE)
        lines.append(f"[{event.get('seq', '?'):>4}] +{elapsed:8.3f}s "
                     f"{event.get('type', '?'):<14} {payload}".rstrip())
    return "\n".join(lines)


def _phase_line(name: str, entry: dict) -> str:
    status = entry.get("status", "?")
    wall = entry.get("wall_s")
    cpu = entry.get("cpu_s")
    rss = entry.get("peak_rss_mb")
    parts = [f"  {name:<22} {status:<7}"]
    parts.append(f"{wall:9.3f}s wall" if wall is not None else f"{'':>15}")
    parts.append(f"{cpu:9.3f}s cpu" if cpu is not None else f"{'':>13}")
    if rss is not None:
        parts.append(f"peak {rss:8.1f} MB")
    if entry.get("cached"):
        parts.append("[cache hit]")
    if entry.get("error"):
        parts.append(f"error: {entry['error']}")
    return " ".join(parts).rstrip()


def render_summary(events: list[dict],
                   warnings: list[str] | None = None) -> str:
    """The human-readable roll-up behind ``repro trace summary``."""
    summary = summarize_journal(events, warnings)
    lines: list[str] = []
    run = summary.run
    scenario = run.get("scenario", {})
    head = [f"status={summary.status}"]
    if run:
        head.append(f"seed={run.get('seed')}")
        head.append(f"faults={run.get('fault_profile')}")
        if run.get("jobs") is not None:
            head.append(f"jobs={run.get('jobs')}")
        head.append(f"code={run.get('code_version')}")
    if scenario:
        head.append(f"vms={scenario.get('nep_vm_count')}"
                    f"/{scenario.get('azure_vm_count')}")
        head.append(f"days={scenario.get('trace_days')}")
    lines.append("run: " + " ".join(head))
    if summary.end.get("error"):
        lines.append(f"error: {summary.end['error']}")

    lines.append(f"phases ({len(summary.phases)}):")
    if summary.phases:
        lines.extend(_phase_line(name, entry)
                     for name, entry in summary.phases.items())
    else:
        lines.append("  (none recorded)")

    cache = summary.cache
    counts = {kind: len(items) for kind, items in cache.items()}
    lines.append(f"cache: {counts['hit']} hits, {counts['miss']} misses, "
                 f"{counts['store']} stores, {counts['evict']} evictions")
    for kind in ("hit", "miss", "store", "evict"):
        for item in cache[kind]:
            key = str(item.get("key", ""))[:12]
            size = item.get("bytes")
            size_s = f"  {size / 1048576:.1f} MiB" if size else ""
            lines.append(f"  {kind:<6} {item.get('artifact', '?'):<22} "
                         f"{key}{size_s}")

    pool = summary.pool
    lines.append(f"pool: {pool['dispatched']} jobs dispatched, "
                 f"{pool['completed']} completed, "
                 f"{pool['vms']} VM series rendered")

    seen = summary.event_counts
    recovered = {label: seen.get(etype, 0) for label, etype in (
        ("job retries", "job_retry"),
        ("worker restarts", "worker_restart"),
        ("cache retries", "cache_retry"),
        ("io retries", "io_retry"),
        ("quarantined", "job_quarantined"),
        ("cache write errors", "cache_write_error"),
    ) if seen.get(etype, 0)}
    if recovered or seen.get("resume", 0):
        parts = [f"{n} {label}" for label, n in recovered.items()]
        if seen.get("resume", 0):
            parts.append("resumed run")
        lines.append("resilience: " + ", ".join(parts))

    if summary.live:
        live = summary.live
        lines.append(
            f"live: {live.get('ticks')} ticks over "
            f"{live.get('servers')} servers, "
            f"{live.get('fault_ticks')} fault ticks, "
            f"{live.get('rejected')} rejected, "
            f"{live.get('displaced')} displaced, "
            f"digest {str(live.get('digest', ''))[:16]}")

    if summary.faults is not None:
        faults = summary.faults
        lines.append(
            f"faults: profile={faults.get('profile')} "
            f"outages={faults.get('outages')} "
            f"crashes={faults.get('server_crashes')} "
            f"episodes={faults.get('episodes')}")
    for probe, stats in summary.probe_stats.items():
        if probe == "ping":
            lines.append(
                f"probes[ping]: {stats.get('probes')} probed, "
                f"{stats.get('timed_out')} timed out, "
                f"{stats.get('recovered')} recovered, "
                f"{stats.get('unreachable')} unreachable")
        else:
            lines.append(
                f"probes[{probe}]: {stats.get('probes')} probed, "
                f"{stats.get('unreachable')} unreachable, "
                f"{stats.get('degraded')} degraded")

    counters = summary.end.get("counters")
    if counters:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        lines.append(f"counters: {rendered}")
    if summary.warnings:
        lines.append(f"warnings ({len(summary.warnings)}):")
        lines.extend(f"  {message}" for message in summary.warnings)
    lines.append(f"events: {sum(summary.event_counts.values())} total "
                 + " ".join(f"{k}={v}" for k, v
                            in sorted(summary.event_counts.items())))
    return "\n".join(lines)


def _delta(a: float | None, b: float | None) -> str:
    if a is None or b is None:
        return "n/a"
    delta = b - a
    ratio = f" ({b / a:.2f}x)" if a > 1e-9 else ""
    return f"{delta:+.3f}s{ratio}"


def diff_journals(events_a: list[dict], events_b: list[dict],
                  label_a: str = "A", label_b: str = "B") -> str:
    """Compare two journals: phases, cache behaviour, event counts.

    Wall-clock deltas are reported for shared phases; structural
    differences (phases, cache events, event types present in only one
    run, diverging live-engine fault timelines) are called out
    explicitly, since those are what a determinism or cache regression
    looks like.  When nothing structural differs the report ends with a
    ``result: no behavioural differences`` verdict — timing deltas
    alone never count as a difference.
    """
    a = summarize_journal(events_a)
    b = summarize_journal(events_b)
    structural = False
    lines = [f"diff: {label_a} -> {label_b}"]
    run_a, run_b = a.run, b.run
    for field_name in ("seed", "fault_profile", "code_version"):
        if run_a.get(field_name) != run_b.get(field_name):
            structural = True
            lines.append(f"  {field_name}: {run_a.get(field_name)} -> "
                         f"{run_b.get(field_name)}")
    if a.status != b.status:
        structural = True
        lines.append(f"  status: {a.status} -> {b.status}")

    lines.append("phases:")
    for name in dict.fromkeys(list(a.phases) + list(b.phases)):
        pa, pb = a.phases.get(name), b.phases.get(name)
        if pa is None or pb is None:
            structural = True
            lines.append(f"  {name:<22} only in "
                         f"{label_a if pb is None else label_b}")
            continue
        cached = ""
        if pa.get("cached") != pb.get("cached"):
            structural = True
            cached = (f"  cache: {_cached_word(pa)} -> {_cached_word(pb)}")
        lines.append(f"  {name:<22} "
                     f"{_delta(pa.get('wall_s'), pb.get('wall_s'))}{cached}")

    counts_a = {k: len(v) for k, v in a.cache.items()}
    counts_b = {k: len(v) for k, v in b.cache.items()}
    if counts_a != counts_b:
        structural = True
        lines.append("cache: " + " ".join(
            f"{kind}:{counts_a[kind]}->{counts_b[kind]}"
            for kind in counts_a if counts_a[kind] != counts_b[kind]))
    else:
        lines.append("cache: identical behaviour "
                     f"({counts_a['hit']} hits, {counts_a['miss']} misses)")

    diffs = []
    for etype in dict.fromkeys(list(a.event_counts) + list(b.event_counts)):
        na, nb = a.event_counts.get(etype, 0), b.event_counts.get(etype, 0)
        if na != nb:
            diffs.append(f"{etype}:{na}->{nb}")
    if diffs:
        structural = True
    lines.append("events: " + (" ".join(diffs) if diffs
                               else "identical type counts"))

    live_lines, live_diverged = _diff_live(a, b, label_a, label_b)
    structural = structural or live_diverged
    lines.extend(live_lines)

    ca = (a.end.get("counters") or {})
    cb = (b.end.get("counters") or {})
    counter_diffs = [f"{name}:{ca.get(name, 0)}->{cb.get(name, 0)}"
                     for name in dict.fromkeys(list(ca) + list(cb))
                     if ca.get(name, 0) != cb.get(name, 0)]
    if counter_diffs:
        structural = True
        lines.append("counters: " + " ".join(counter_diffs))
    lines.append("result: " + ("behavioural differences found" if structural
                               else "no behavioural differences"))
    return "\n".join(lines)


def _diff_live(a: JournalSummary, b: JournalSummary,
               label_a: str, label_b: str) -> tuple[list[str], bool]:
    """Live-engine divergence, localized to the first differing tick.

    Compares the canonical ``live_fault`` timelines tick by tick and
    the ``live_summary`` digests; a fault-interleaved run diffed
    against a clean one is pinned to its first fault tick.
    """
    if not a.live and not b.live:
        return [], False
    lines: list[str] = []
    diverged = False
    ticks_a = {int(f.get("tick", -1)): f for f in a.live_faults}
    ticks_b = {int(f.get("tick", -1)): f for f in b.live_faults}
    for tick in sorted(set(ticks_a) | set(ticks_b)):
        fa, fb = ticks_a.get(tick), ticks_b.get(tick)
        if fa == fb:
            continue
        diverged = True
        if fa is None or fb is None:
            lines.append(
                f"live: fault timeline diverges at tick {tick} "
                f"(fault only in {label_a if fb is None else label_b}: "
                f"down={(fa or fb).get('down')} "
                f"evacuated={(fa or fb).get('evacuated')} "
                f"displaced={(fa or fb).get('displaced')})")
        else:
            lines.append(
                f"live: fault tick {tick} differs: "
                f"down {fa.get('down')}->{fb.get('down')} "
                f"evacuated {fa.get('evacuated')}->{fb.get('evacuated')} "
                f"displaced {fa.get('displaced')}->{fb.get('displaced')}")
        break
    digest_a = str(a.live.get("digest", ""))
    digest_b = str(b.live.get("digest", ""))
    if digest_a != digest_b:
        diverged = True
        lines.append(f"live: series digest {digest_a[:16] or '(none)'} -> "
                     f"{digest_b[:16] or '(none)'}")
    if not diverged:
        lines.append(
            f"live: identical timeline ({len(a.live_faults)} fault ticks, "
            f"digest {digest_a[:16] or '(none)'})")
    return lines, diverged


def _cached_word(entry: dict) -> str:
    return "hit" if entry.get("cached") else "generated"
