"""Structured run observability: the journal, memory sampling, tracing.

At paper scale a study run spans minutes of generation, gigabytes of
cached artifacts, a process pool, and (optionally) injected fault
weather — and until this package existed the only windows into a run
were :class:`~repro.perf.PerfRegistry` span totals and ad-hoc prints.
``repro.obs`` gives every run a machine-readable provenance record:

* :class:`RunJournal` — a run-scoped JSON-Lines event log (run
  start/end with the full scenario, phase begin/end, cache
  hit/miss/store/evict, pool job dispatch/completion, fault-schedule
  summaries, warnings), written with the same staging + atomic-rename
  discipline as :class:`~repro.cache.ArtifactCache`;
* :class:`MemorySampler` — lightweight RSS/peak-RSS probes attached to
  phase-end and run-end events;
* :mod:`repro.obs.trace` — a tolerant journal reader plus the
  renderers behind the ``repro trace show|summary|diff`` subcommand.

Journals are **deterministic modulo wall-clock fields**: strip the keys
in :data:`VOLATILE_FIELDS` (see :func:`canonical_events`) and two runs
of the same scenario produce byte-identical event streams, regardless
of ``--jobs`` or cache temperature on the *same* cache state.

Usage::

    from repro import EdgeStudy, Scenario
    from repro.obs import RunJournal, read_journal, render_summary

    with RunJournal("run/journal.jsonl") as journal:
        study = EdgeStudy(Scenario.smoke_scale(), journal=journal)
        study.latency_results
    events, warnings = read_journal("run/journal.jsonl")
    print(render_summary(events))
"""

from .journal import (
    VOLATILE_EVENT_TYPES,
    VOLATILE_FIELDS,
    RunJournal,
    canonical_events,
    merge_cell_journal,
)
from .memory import MemorySampler
from .trace import (
    JournalSummary,
    diff_journals,
    phase_breakdown,
    read_journal,
    render_show,
    render_summary,
    summarize_journal,
)

__all__ = [
    "JournalSummary",
    "MemorySampler",
    "RunJournal",
    "VOLATILE_EVENT_TYPES",
    "VOLATILE_FIELDS",
    "canonical_events",
    "diff_journals",
    "merge_cell_journal",
    "phase_breakdown",
    "read_journal",
    "render_show",
    "render_summary",
    "summarize_journal",
]
