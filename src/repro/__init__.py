"""edgescope: a reproduction of "From Cloud to Edge: A First Look at
Public Edge Platforms" (Xu et al., IMC 2021).

The library simulates everything the paper measured behind paid/closed
doors — the NEP edge platform, the crowd-sourced performance campaign,
the QoE testbeds, the 3-month VM trace, and the billing engines — and
implements the paper's analyses on top.

Quickstart::

    from repro import EdgeStudy, Scenario

    study = EdgeStudy(Scenario.smoke_scale())
    records = study.per_user               # Fig 2/3 inputs
    nep_trace = study.nep.dataset          # Fig 8-14 inputs

See DESIGN.md for the experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from .cache import ArtifactCache, default_cache_dir
from .config import DEFAULT_SCENARIO, FAULT_PROFILES, RandomState, Scenario
from .errors import (
    BillingError,
    CapacityError,
    ConfigurationError,
    FaultError,
    GeoError,
    MeasurementError,
    PlacementError,
    PredictionError,
    ReproError,
    SchedulingError,
    TopologyError,
    TraceError,
)
from .faults import FaultSchedule, build_fault_schedule
from .obs import MemorySampler, RunJournal
from .parallel import resolve_jobs
from .perf import PerfRegistry
from .phases import PhaseLedger, PhaseStatus
from .study import EdgeStudy, default_study, smoke_study, study_for

__version__ = "1.0.0"

__all__ = [
    "ArtifactCache",
    "BillingError",
    "CapacityError",
    "ConfigurationError",
    "DEFAULT_SCENARIO",
    "EdgeStudy",
    "FAULT_PROFILES",
    "FaultError",
    "FaultSchedule",
    "GeoError",
    "MeasurementError",
    "MemorySampler",
    "PerfRegistry",
    "PhaseLedger",
    "PhaseStatus",
    "PlacementError",
    "PredictionError",
    "RandomState",
    "ReproError",
    "RunJournal",
    "Scenario",
    "SchedulingError",
    "TopologyError",
    "TraceError",
    "build_fault_schedule",
    "default_cache_dir",
    "default_study",
    "resolve_jobs",
    "smoke_study",
    "study_for",
    "__version__",
]
