"""Live VM migration and a usage-driven rebalancer (§4.2/§4.3/§5).

The paper repeatedly points to dynamic VM migration [34, 61] as the
remedy for the imbalance it measures, while cautioning that migration
delay matters on edges.  This module provides:

* :func:`migrate` — move one VM between servers with a pre-copy live
  migration cost model (total data moved, downtime);
* :class:`UsageRebalancer` — a greedy rebalancer that iteratively moves
  the hottest VM from the most-loaded server to the least-loaded feasible
  one until the load spread falls under a target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import CapacityError
from .cluster import Platform
from .entities import VM

#: Pre-copy migration model parameters (Clark et al. 2005 shape).
LINK_GBPS = 10.0          # migration link
DIRTY_RATE_GBPS = 0.8     # memory dirtying while copying
PRECOPY_ROUNDS = 4
STOP_COPY_OVERHEAD_S = 0.15


@dataclass(frozen=True)
class MigrationCost:
    """Predicted cost of one live migration."""

    data_moved_gb: float
    total_seconds: float
    downtime_seconds: float


def predict_migration_cost(memory_gb: float,
                           link_gbps: float = LINK_GBPS,
                           dirty_rate_gbps: float = DIRTY_RATE_GBPS,
                           rounds: int = PRECOPY_ROUNDS) -> MigrationCost:
    """Cost of pre-copy live migration of a VM with ``memory_gb`` of RAM.

    Each pre-copy round retransmits the memory dirtied during the previous
    round; the final stop-and-copy round is the downtime.

    Raises:
        CapacityError: on non-positive memory or link rate.
    """
    if memory_gb <= 0:
        raise CapacityError(f"memory must be positive, got {memory_gb}")
    if link_gbps <= 0:
        raise CapacityError(f"link rate must be positive, got {link_gbps}")
    if dirty_rate_gbps >= link_gbps:
        # Pre-copy cannot converge; model a bounded-round forced stop.
        rounds = 1
    dirty_ratio = dirty_rate_gbps / link_gbps
    transferred = 0.0
    round_gb = memory_gb
    for _ in range(rounds):
        transferred += round_gb
        round_gb *= dirty_ratio
    stop_copy_gb = round_gb
    transferred += stop_copy_gb
    gb_per_second = link_gbps / 8.0
    return MigrationCost(
        data_moved_gb=transferred,
        total_seconds=transferred / gb_per_second + STOP_COPY_OVERHEAD_S,
        downtime_seconds=stop_copy_gb / gb_per_second + STOP_COPY_OVERHEAD_S,
    )


def migrate(platform: Platform, vm: VM, target_server_id: str) -> MigrationCost:
    """Move ``vm`` onto ``target_server_id``; returns the predicted cost.

    Raises:
        CapacityError: if the VM is unplaced, already on the target, or
            the target lacks capacity.
    """
    if not vm.placed:
        raise CapacityError(f"VM {vm.vm_id} is not placed anywhere")
    if vm.server_id == target_server_id:
        raise CapacityError(f"VM {vm.vm_id} already on {target_server_id}")
    source = platform.server(vm.server_id)  # type: ignore[arg-type]
    target = platform.server(target_server_id)
    if not target.can_host(vm.spec):
        raise CapacityError(
            f"server {target_server_id} cannot host VM {vm.vm_id}"
        )
    source.detach(vm)
    target.attach(vm)
    return predict_migration_cost(float(vm.spec.memory_gb))


#: Callback: mean CPU usage of a VM in [0, 1].
VmUsageProvider = Callable[[str], float]


@dataclass(frozen=True)
class RebalanceMove:
    """One move performed by the rebalancer."""

    vm_id: str
    from_server: str
    to_server: str
    cost: MigrationCost


class UsageRebalancer:
    """Greedy hot-to-cold migration until server loads even out.

    Server load is the usage-weighted sum of hosted VMs' subscribed cores
    divided by capacity.  Each iteration moves the busiest VM off the
    hottest server onto the coldest feasible server in scope.
    """

    def __init__(self, usage: VmUsageProvider, max_moves: int = 50,
                 target_spread: float = 0.25) -> None:
        if max_moves <= 0:
            raise CapacityError(f"max_moves must be positive, got {max_moves}")
        if target_spread <= 0:
            raise CapacityError(f"target_spread must be positive, got {target_spread}")
        self._usage = usage
        self._max_moves = max_moves
        self._target_spread = target_spread

    def server_load(self, platform: Platform, server_id: str) -> float:
        server = platform.server(server_id)
        if server.capacity.cpu_cores == 0:
            return 0.0
        busy_cores = sum(
            self._usage(vm_id) * platform.vms[vm_id].spec.cpu_cores
            for vm_id in server.vm_ids
        )
        return busy_cores / server.capacity.cpu_cores

    def rebalance_site(self, platform: Platform,
                       site_id: str) -> list[RebalanceMove]:
        """Run the greedy loop over one site; returns the moves made."""
        site = platform.site(site_id)
        moves: list[RebalanceMove] = []
        for _ in range(self._max_moves):
            loads = {s.server_id: self.server_load(platform, s.server_id)
                     for s in site.servers}
            hottest = max(loads, key=loads.get)  # type: ignore[arg-type]
            coldest = min(loads, key=loads.get)  # type: ignore[arg-type]
            if loads[hottest] - loads[coldest] <= self._target_spread:
                break
            hot_server = platform.server(hottest)
            if not hot_server.vm_ids:
                break
            candidates = sorted(
                hot_server.vm_ids,
                key=lambda vid: self._usage(vid) * platform.vms[vid].spec.cpu_cores,
                reverse=True,
            )
            moved = False
            for vm_id in candidates:
                vm = platform.vms[vm_id]
                if platform.server(coldest).can_host(vm.spec):
                    cost = migrate(platform, vm, coldest)
                    moves.append(RebalanceMove(
                        vm_id=vm_id, from_server=hottest,
                        to_server=coldest, cost=cost,
                    ))
                    moved = True
                    break
            if not moved:
                break
        return moves
