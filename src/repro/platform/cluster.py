"""Platform inventory: the container tying sites, servers, VMs, and apps.

:class:`Platform` is the single source of truth for topology queries used by
placement, scheduling, trace generation, and the §4 analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..errors import TopologyError
from ..geo.coords import GeoPoint, haversine_km_many
from .entities import App, Customer, PlatformKind, Server, Site, VM


@dataclass
class Platform:
    """A named edge or cloud platform with its full inventory."""

    name: str
    kind: PlatformKind
    sites: list[Site] = field(default_factory=list)
    vms: dict[str, VM] = field(default_factory=dict)
    apps: dict[str, App] = field(default_factory=dict)
    customers: dict[str, Customer] = field(default_factory=dict)
    # Derived lookup caches, rebuilt whenever the site list changes.
    _site_index: dict[str, Site] | None = field(default=None, init=False,
                                                repr=False, compare=False)
    _server_index: dict[str, Server] | None = field(default=None, init=False,
                                                    repr=False, compare=False)
    _site_coords: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False)

    # ---- registration --------------------------------------------------

    def add_site(self, site: Site) -> None:
        if any(s.site_id == site.site_id for s in self.sites):
            raise TopologyError(f"duplicate site id {site.site_id!r}")
        self.sites.append(site)
        self._site_index = None
        self._server_index = None
        self._site_coords = None

    def register_customer(self, customer: Customer) -> None:
        self.customers[customer.customer_id] = customer

    def register_app(self, app: App) -> None:
        if app.customer_id not in self.customers:
            raise TopologyError(
                f"app {app.app_id!r} references unknown customer "
                f"{app.customer_id!r}"
            )
        self.apps[app.app_id] = app

    def register_vm(self, vm: VM) -> None:
        if vm.app_id not in self.apps:
            raise TopologyError(
                f"VM {vm.vm_id!r} references unknown app {vm.app_id!r}"
            )
        self.vms[vm.vm_id] = vm

    # ---- lookups -------------------------------------------------------

    @property
    def is_edge(self) -> bool:
        return self.kind is PlatformKind.EDGE

    def site(self, site_id: str) -> Site:
        if self._site_index is None:
            self._site_index = {s.site_id: s for s in self.sites}
        try:
            return self._site_index[site_id]
        except KeyError:
            raise TopologyError(
                f"unknown site {site_id!r} on {self.name}"
            ) from None

    def server(self, server_id: str) -> Server:
        if self._server_index is None:
            self._server_index = {
                server.server_id: server
                for s in self.sites for server in s.servers
            }
        try:
            return self._server_index[server_id]
        except KeyError:
            raise TopologyError(
                f"unknown server {server_id!r} on {self.name}"
            ) from None

    def iter_servers(self) -> Iterable[Server]:
        for s in self.sites:
            yield from s.servers

    @property
    def server_count(self) -> int:
        return sum(s.server_count for s in self.sites)

    def vms_of_app(self, app_id: str) -> list[VM]:
        if app_id not in self.apps:
            raise TopologyError(f"unknown app {app_id!r} on {self.name}")
        return [vm for vm in self.vms.values() if vm.app_id == app_id]

    def vms_on_server(self, server_id: str) -> list[VM]:
        server = self.server(server_id)
        return [self.vms[vid] for vid in server.vm_ids]

    def vms_on_site(self, site_id: str) -> list[VM]:
        """VMs hosted at a site, straight from the server ledgers.

        Walks ``server.vm_ids`` of the site's own servers instead of
        scanning every VM on the platform, so the cost is proportional to
        the site, not the fleet — and it stays correct through
        migrations, which update the ledgers.
        """
        return [
            self.vms[vm_id]
            for server in self.site(site_id).servers
            for vm_id in server.vm_ids
            if vm_id in self.vms
        ]

    def sites_in_province(self, province: str) -> list[Site]:
        return [s for s in self.sites if s.province == province]

    def nearest_sites(self, point: GeoPoint, count: int = 1) -> list[Site]:
        """The ``count`` sites geographically nearest to ``point``.

        Distances to every site come from one vectorised haversine over
        the platform's cached lat/lon arrays.
        """
        if count <= 0:
            raise TopologyError(f"count must be positive, got {count}")
        if self._site_coords is None:
            self._site_coords = (
                np.array([s.location.lat for s in self.sites]),
                np.array([s.location.lon for s in self.sites]),
            )
        lats, lons = self._site_coords
        distances = haversine_km_many(point, lats, lons)
        order = np.argsort(distances, kind="stable")[:count]
        return [self.sites[i] for i in order]

    def live_inventory(self, cores_per_slot: int = 4
                       ) -> tuple[np.ndarray, np.ndarray,
                                  tuple[str, ...], tuple[str, ...]]:
        """The flat per-server array view the live engine advances.

        Returns ``(site_of_server, base_slots, site_ids, server_ids)``:
        servers flattened in site order (so one site is a contiguous
        index range), ``site_of_server[j]`` the owning site's index,
        and ``base_slots[j]`` the server's VM capacity in
        ``cores_per_slot``-core slots (at least one).  Pure topology —
        current VM placement is deliberately not consulted, since the
        live engine owns its own population.

        Raises:
            TopologyError: when ``cores_per_slot`` is not positive.
        """
        if cores_per_slot <= 0:
            raise TopologyError(
                f"cores_per_slot must be positive, got {cores_per_slot}")
        site_of: list[int] = []
        slots: list[int] = []
        server_ids: list[str] = []
        for index, site in enumerate(self.sites):
            for server in site.servers:
                site_of.append(index)
                slots.append(max(
                    1, int(server.capacity.cpu_cores) // cores_per_slot))
                server_ids.append(server.server_id)
        return (np.asarray(site_of, dtype=np.int64),
                np.asarray(slots, dtype=np.int64),
                tuple(s.site_id for s in self.sites),
                tuple(server_ids))

    # ---- platform-wide statistics (§4.1 sales rates) --------------------

    def site_cpu_sales_rates(self) -> list[float]:
        return [s.cpu_sales_rate() for s in self.sites]

    def site_memory_sales_rates(self) -> list[float]:
        return [s.memory_sales_rate() for s in self.sites]

    def server_cpu_sales_rates(self) -> list[float]:
        return [srv.cpu_sales_rate() for srv in self.iter_servers()]

    def validate(self) -> None:
        """Cross-check the inventory ledgers; raise on inconsistency.

        Raises:
            TopologyError: if any VM's placement disagrees with the server
                ledgers, or allocation bookkeeping drifted.
        """
        placed_ids = set()
        for server in self.iter_servers():
            for vm_id in server.vm_ids:
                if vm_id not in self.vms:
                    raise TopologyError(
                        f"server {server.server_id} lists unknown VM {vm_id!r}"
                    )
                vm = self.vms[vm_id]
                if vm.server_id != server.server_id:
                    raise TopologyError(
                        f"VM {vm_id} thinks it is on {vm.server_id!r} but "
                        f"server {server.server_id} lists it"
                    )
                placed_ids.add(vm_id)
        for vm in self.vms.values():
            if vm.placed and vm.vm_id not in placed_ids:
                raise TopologyError(
                    f"VM {vm.vm_id} claims placement on {vm.server_id!r} "
                    f"but no server lists it"
                )
