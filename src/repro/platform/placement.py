"""VM placement: subscription requests and placement policies.

§2 describes NEP's operation: a customer submits "10 VMs in Guangdong
province, each with 16 cores and 32 GB"; NEP returns one feasible
allocation, favouring servers that are **low in sales ratio and actual CPU
usage (mean and max)**.  :class:`NepPlacementPolicy` implements exactly
that; the classic bin-packing baselines the paper contrasts with
("resource fragmentation, i.e., the bin-packing problem", §4.1) are
provided for the ablation benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import PlacementError
from .cluster import Platform
from .entities import Server, Site, VM, VMSpec


@dataclass(frozen=True)
class SubscriptionRequest:
    """A customer's resource requirement at a geographic scope (§2)."""

    customer_id: str
    app_id: str
    image_id: str
    spec: VMSpec
    vm_count: int
    province: str | None = None   # None = anywhere on the platform
    city: str | None = None       # narrows the province further

    def __post_init__(self) -> None:
        if self.vm_count <= 0:
            raise PlacementError(f"vm_count must be positive, got {self.vm_count}")


#: Optional provider of historical CPU usage per server: maps server_id to
#: (mean_usage, max_usage) in [0, 1].  NEP's policy consults it when
#: available; during initial platform build-out there is no history yet.
UsageProvider = Callable[[str], tuple[float, float]]


class PlacementPolicy(abc.ABC):
    """Strategy interface: order candidate servers for one VM."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose_server(self, candidates: list[Server],
                      spec: VMSpec) -> Server:
        """Pick the server to host a VM with ``spec`` from ``candidates``.

        ``candidates`` is non-empty and every entry already fits the spec.
        """

    def place(self, platform: Platform, request: SubscriptionRequest,
              usage: UsageProvider | None = None) -> list[VM]:
        """Place all VMs of a subscription request; returns the new VMs.

        Placement is transactional in spirit: if any VM cannot be placed,
        a :class:`PlacementError` is raised after rolling back the VMs
        already attached for this request.

        Raises:
            PlacementError: when the scoped sites lack feasible capacity.
        """
        sites = _scoped_sites(platform, request)
        placed: list[tuple[Server, VM]] = []
        try:
            for index in range(request.vm_count):
                candidates = [
                    server
                    for site in sites
                    for server in site.servers
                    if server.can_host(request.spec)
                ]
                if not candidates:
                    raise PlacementError(
                        f"no feasible server for request {request.app_id!r} "
                        f"(VM {index + 1}/{request.vm_count}, scope "
                        f"province={request.province!r} city={request.city!r})"
                    )
                server = self.choose_server(candidates, request.spec)
                vm = VM(
                    vm_id=f"{request.app_id}-vm{len(platform.vms) + index:05d}",
                    spec=request.spec,
                    customer_id=request.customer_id,
                    app_id=request.app_id,
                    image_id=request.image_id,
                )
                server.attach(vm)
                placed.append((server, vm))
        except PlacementError:
            for server, vm in placed:
                server.detach(vm)
            raise
        for _, vm in placed:
            platform.register_vm(vm)
        return [vm for _, vm in placed]


def _scoped_sites(platform: Platform,
                  request: SubscriptionRequest) -> list[Site]:
    sites = platform.sites
    if request.province is not None:
        sites = [s for s in sites if s.province == request.province]
    if request.city is not None:
        sites = [s for s in sites if s.city == request.city]
    if not sites:
        raise PlacementError(
            f"no sites in scope province={request.province!r} "
            f"city={request.city!r} on {platform.name}"
        )
    return sites


class NepPlacementPolicy(PlacementPolicy):
    """NEP's production policy: prefer low sales ratio and low CPU usage.

    The score is the sum of the CPU sales ratio and, when a usage provider
    is supplied, the historical mean and max CPU usage — exactly the three
    signals §2 lists.  Lowest score wins; ties break on free cores.
    """

    name = "nep-low-usage"

    def __init__(self, usage: UsageProvider | None = None) -> None:
        self._usage = usage

    def choose_server(self, candidates: list[Server], spec: VMSpec) -> Server:
        def score(server: Server) -> tuple[float, float]:
            s = server.cpu_sales_rate()
            if self._usage is not None:
                mean_u, max_u = self._usage(server.server_id)
                s += mean_u + max_u
            return (s, -server.free.cpu_cores)

        return min(candidates, key=score)


class FirstFitPolicy(PlacementPolicy):
    """Classic first-fit: the first feasible server in inventory order."""

    name = "first-fit"

    def choose_server(self, candidates: list[Server], spec: VMSpec) -> Server:
        return candidates[0]


class BestFitPolicy(PlacementPolicy):
    """Bin-packing best-fit: the feasible server with least remaining CPU.

    Maximises consolidation (the opposite of NEP's spreading), useful for
    the fragmentation ablation (§4.1 implications).
    """

    name = "best-fit"

    def choose_server(self, candidates: list[Server], spec: VMSpec) -> Server:
        return min(
            candidates,
            key=lambda s: (s.free.cpu_cores - spec.cpu_cores,
                           s.free.memory_gb - spec.memory_gb),
        )


class RandomPolicy(PlacementPolicy):
    """Uniform random feasible server; the null baseline."""

    name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def choose_server(self, candidates: list[Server], spec: VMSpec) -> Server:
        return candidates[int(self._rng.integers(0, len(candidates)))]
