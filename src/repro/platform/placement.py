"""VM placement: subscription requests and placement policies.

§2 describes NEP's operation: a customer submits "10 VMs in Guangdong
province, each with 16 cores and 32 GB"; NEP returns one feasible
allocation, favouring servers that are **low in sales ratio and actual CPU
usage (mean and max)**.  :class:`NepPlacementPolicy` implements exactly
that; the classic bin-packing baselines the paper contrasts with
("resource fragmentation, i.e., the bin-packing problem", §4.1) are
provided for the ablation benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import PlacementError
from .cluster import Platform
from .entities import Server, Site, VM, VMSpec


@dataclass(frozen=True)
class SubscriptionRequest:
    """A customer's resource requirement at a geographic scope (§2)."""

    customer_id: str
    app_id: str
    image_id: str
    spec: VMSpec
    vm_count: int
    province: str | None = None   # None = anywhere on the platform
    city: str | None = None       # narrows the province further

    def __post_init__(self) -> None:
        if self.vm_count <= 0:
            raise PlacementError(f"vm_count must be positive, got {self.vm_count}")


#: Optional provider of historical CPU usage per server: maps server_id to
#: (mean_usage, max_usage) in [0, 1].  NEP's policy consults it when
#: available; during initial platform build-out there is no history yet.
UsageProvider = Callable[[str], tuple[float, float]]


class _ServerTable:
    """Numeric columns over the scoped servers for vectorised placement.

    Feasibility checks and scoring over hundreds of servers per VM were
    the placement hot path (each went through `Server.free` /
    `ResourceVector` object churn); the table keeps free capacity as flat
    arrays, updated incrementally as VMs commit.
    """

    def __init__(self, servers: list[Server]) -> None:
        self.servers = servers
        self.cap_cpu = np.array([s.capacity.cpu_cores for s in servers])
        self.free_cpu = np.array(
            [s.capacity.cpu_cores - s.allocated.cpu_cores for s in servers])
        self.free_mem = np.array(
            [s.capacity.memory_gb - s.allocated.memory_gb for s in servers])
        self.free_disk = np.array(
            [s.capacity.disk_gb - s.allocated.disk_gb for s in servers])

    def feasible_indices(self, spec: VMSpec) -> np.ndarray:
        return np.flatnonzero(
            (self.free_cpu >= spec.cpu_cores)
            & (self.free_mem >= spec.memory_gb)
            & (self.free_disk >= spec.disk_gb)
        )

    def cpu_sales_rates(self) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            rates = (self.cap_cpu - self.free_cpu) / self.cap_cpu
        return np.where(self.cap_cpu > 0, rates, 0.0)

    def commit(self, index: int, spec: VMSpec) -> None:
        self.free_cpu[index] -= spec.cpu_cores
        self.free_mem[index] -= spec.memory_gb
        self.free_disk[index] -= spec.disk_gb


class PlacementPolicy(abc.ABC):
    """Strategy interface: order candidate servers for one VM."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose_server(self, candidates: list[Server],
                      spec: VMSpec) -> Server:
        """Pick the server to host a VM with ``spec`` from ``candidates``.

        ``candidates`` is non-empty and every entry already fits the spec.
        """

    def _choose_index(self, table: _ServerTable, feasible: np.ndarray,
                      spec: VMSpec) -> int:
        """Vectorised selection hook; built-in policies override this.

        The default delegates to :meth:`choose_server` so custom policies
        written against the public interface keep working unchanged.
        """
        candidates = [table.servers[i] for i in feasible]
        chosen = self.choose_server(candidates, spec)
        for i, candidate in zip(feasible, candidates):
            if candidate is chosen:
                return int(i)
        raise PlacementError(
            f"policy {self.name!r} chose a server outside the candidate set"
        )

    def place(self, platform: Platform, request: SubscriptionRequest,
              usage: UsageProvider | None = None,
              specs: list[VMSpec] | None = None,
              allow_partial: bool = False) -> list[VM]:
        """Place all VMs of a subscription request; returns the new VMs.

        Placement is transactional in spirit: if any VM cannot be placed,
        a :class:`PlacementError` is raised after rolling back the VMs
        already attached for this request.

        Args:
            platform: the target platform.
            request: the subscription request.
            usage: optional historical-usage provider for the policy.
            specs: optional per-VM spec overrides (e.g. per-VM disk sizes);
                must have ``request.vm_count`` entries.
            allow_partial: when True, a saturated scope stops placement and
                the VMs placed so far are kept and returned instead of
                rolled back — the behaviour of issuing one request per VM,
                without rebuilding the candidate table each time.

        Raises:
            PlacementError: when the scoped sites lack feasible capacity
                (unless ``allow_partial``), or ``specs`` is mis-sized.
        """
        per_vm_specs = specs if specs is not None \
            else [request.spec] * request.vm_count
        if len(per_vm_specs) != request.vm_count:
            raise PlacementError(
                f"got {len(per_vm_specs)} specs for "
                f"{request.vm_count} VMs of request {request.app_id!r}"
            )
        sites = _scoped_sites(platform, request)
        servers = [server for site in sites for server in site.servers]
        table = _ServerTable(servers)
        placed: list[tuple[Server, VM]] = []
        try:
            for index, spec in enumerate(per_vm_specs):
                feasible = table.feasible_indices(spec)
                if feasible.size == 0:
                    if allow_partial:
                        break
                    raise PlacementError(
                        f"no feasible server for request {request.app_id!r} "
                        f"(VM {index + 1}/{request.vm_count}, scope "
                        f"province={request.province!r} city={request.city!r})"
                    )
                choice = self._choose_index(table, feasible, spec)
                server = servers[choice]
                vm = VM(
                    vm_id=f"{request.app_id}-vm{len(platform.vms) + index:05d}",
                    spec=spec,
                    customer_id=request.customer_id,
                    app_id=request.app_id,
                    image_id=request.image_id,
                )
                server.attach(vm)
                table.commit(choice, spec)
                placed.append((server, vm))
        except PlacementError:
            for server, vm in placed:
                server.detach(vm)
            raise
        for _, vm in placed:
            platform.register_vm(vm)
        return [vm for _, vm in placed]


def _scoped_sites(platform: Platform,
                  request: SubscriptionRequest) -> list[Site]:
    sites = platform.sites
    if request.province is not None:
        sites = [s for s in sites if s.province == request.province]
    if request.city is not None:
        sites = [s for s in sites if s.city == request.city]
    if not sites:
        raise PlacementError(
            f"no sites in scope province={request.province!r} "
            f"city={request.city!r} on {platform.name}"
        )
    return sites


class NepPlacementPolicy(PlacementPolicy):
    """NEP's production policy: prefer low sales ratio and low CPU usage.

    The score is the sum of the CPU sales ratio and, when a usage provider
    is supplied, the historical mean and max CPU usage — exactly the three
    signals §2 lists.  Lowest score wins; ties break on free cores.
    """

    name = "nep-low-usage"

    def __init__(self, usage: UsageProvider | None = None) -> None:
        self._usage = usage

    def choose_server(self, candidates: list[Server], spec: VMSpec) -> Server:
        def score(server: Server) -> tuple[float, float]:
            s = server.cpu_sales_rate()
            if self._usage is not None:
                mean_u, max_u = self._usage(server.server_id)
                s += mean_u + max_u
            return (s, -server.free.cpu_cores)

        return min(candidates, key=score)

    def _choose_index(self, table: _ServerTable, feasible: np.ndarray,
                      spec: VMSpec) -> int:
        score = table.cpu_sales_rates()[feasible]
        if self._usage is not None:
            extra = np.empty(feasible.size)
            for j, i in enumerate(feasible):
                mean_u, max_u = self._usage(table.servers[i].server_id)
                extra[j] = mean_u + max_u
            score = score + extra
        # lexsort: last key is primary — lowest score, then most free cores.
        order = np.lexsort((-table.free_cpu[feasible], score))
        return int(feasible[order[0]])


class FirstFitPolicy(PlacementPolicy):
    """Classic first-fit: the first feasible server in inventory order."""

    name = "first-fit"

    def choose_server(self, candidates: list[Server], spec: VMSpec) -> Server:
        return candidates[0]

    def _choose_index(self, table: _ServerTable, feasible: np.ndarray,
                      spec: VMSpec) -> int:
        return int(feasible[0])


class BestFitPolicy(PlacementPolicy):
    """Bin-packing best-fit: the feasible server with least remaining CPU.

    Maximises consolidation (the opposite of NEP's spreading), useful for
    the fragmentation ablation (§4.1 implications).
    """

    name = "best-fit"

    def choose_server(self, candidates: list[Server], spec: VMSpec) -> Server:
        return min(
            candidates,
            key=lambda s: (s.free.cpu_cores - spec.cpu_cores,
                           s.free.memory_gb - spec.memory_gb),
        )

    def _choose_index(self, table: _ServerTable, feasible: np.ndarray,
                      spec: VMSpec) -> int:
        order = np.lexsort((table.free_mem[feasible],
                            table.free_cpu[feasible]))
        return int(feasible[order[0]])


class RandomPolicy(PlacementPolicy):
    """Uniform random feasible server; the null baseline."""

    name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def choose_server(self, candidates: list[Server], spec: VMSpec) -> Server:
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def _choose_index(self, table: _ServerTable, feasible: np.ndarray,
                      spec: VMSpec) -> int:
        return int(feasible[int(self._rng.integers(0, feasible.size))])
