"""Serverless / FaaS execution model — the §5 "decomposing edge services"
extension.

The paper argues the future of public edge platforms lies in more
elastic paradigms than reserved IaaS VMs, while warning that serverless
cold starts "can barely meet the requirements for ultra-low-delay edge
applications".  This module makes that trade-off measurable:

* :class:`FaasRuntime` — a per-site pool of function instances with
  cold-start latency, keep-alive expiry, and concurrency limits, driven
  by a request-rate series;
* :class:`FaasBilling` — per-invocation + GB-second pricing;
* :func:`compare_vm_vs_faas` — cost and latency of serving one app's
  diurnal load with reserved VMs vs functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CapacityError, ConfigurationError

#: Cold-start latencies in ms (paper cites SOCK/Catalyzer-class loaders
#: at the fast end and container-pull at the slow end).
COLD_START_MS_DEFAULT = 450.0
WARM_START_MS_DEFAULT = 2.0


@dataclass(frozen=True)
class FunctionSpec:
    """One deployed function: memory footprint and execution profile."""

    name: str
    memory_mb: int
    exec_ms: float
    cold_start_ms: float = COLD_START_MS_DEFAULT
    warm_start_ms: float = WARM_START_MS_DEFAULT

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ConfigurationError(
                f"function {self.name!r}: memory must be positive"
            )
        if self.exec_ms <= 0 or self.cold_start_ms < 0:
            raise ConfigurationError(
                f"function {self.name!r}: bad timing parameters"
            )


@dataclass
class _Instance:
    """One warm function instance with its keep-alive deadline."""

    busy_until_ms: float = 0.0
    expires_at_ms: float = 0.0


@dataclass(frozen=True)
class FaasWindowStats:
    """Outcome of one simulation window."""

    invocations: int
    cold_starts: int
    mean_latency_ms: float
    p95_latency_ms: float
    max_concurrency: int


class FaasRuntime:
    """Discrete per-window simulation of a function pool at one site.

    Requests inside a window arrive uniformly; an idle warm instance
    serves a request with ``warm_start_ms`` overhead, otherwise a new
    instance pays the cold start.  Instances expire ``keep_alive_s``
    after their last use, which is the lever platforms tune to trade
    memory for latency.
    """

    def __init__(self, spec: FunctionSpec, keep_alive_s: float = 600.0,
                 max_instances: int = 1000) -> None:
        if keep_alive_s < 0:
            raise ConfigurationError("keep_alive must be non-negative")
        if max_instances <= 0:
            raise ConfigurationError("max_instances must be positive")
        self.spec = spec
        self.keep_alive_ms = keep_alive_s * 1000.0
        self.max_instances = max_instances
        self._instances: list[_Instance] = []
        self._clock_ms = 0.0
        #: Cumulative GB-seconds consumed (billing input).
        self.gb_seconds = 0.0
        self.total_invocations = 0
        self.total_cold_starts = 0

    @property
    def warm_instances(self) -> int:
        return sum(1 for inst in self._instances
                   if inst.expires_at_ms > self._clock_ms)

    def run_window(self, requests: int, window_s: float,
                   rng: np.random.Generator) -> FaasWindowStats:
        """Simulate one window of ``requests`` arrivals.

        Raises:
            CapacityError: if the pool limit forces request drops.
        """
        if requests < 0 or window_s <= 0:
            raise ConfigurationError("bad window parameters")
        window_ms = window_s * 1000.0
        arrivals = np.sort(rng.uniform(0.0, window_ms, size=requests))
        latencies = []
        cold = 0
        peak = 0
        for offset in arrivals:
            now = self._clock_ms + float(offset)
            self._instances = [inst for inst in self._instances
                               if inst.expires_at_ms > now]
            idle = next((inst for inst in self._instances
                         if inst.busy_until_ms <= now), None)
            if idle is None:
                if len(self._instances) >= self.max_instances:
                    # Raised before this arrival mutates anything, but the
                    # window's earlier arrivals are already accounted; roll
                    # the clock forward so the runtime stays consistent if
                    # the caller catches and continues.
                    self._clock_ms += window_ms
                    self.total_invocations += len(latencies)
                    self.total_cold_starts += cold
                    raise CapacityError(
                        f"function {self.spec.name!r}: pool limit "
                        f"{self.max_instances} exceeded"
                    )
                idle = _Instance()
                self._instances.append(idle)
                start = self.spec.cold_start_ms
                cold += 1
            else:
                start = self.spec.warm_start_ms
            latency = start + self.spec.exec_ms
            idle.busy_until_ms = now + latency
            idle.expires_at_ms = idle.busy_until_ms + self.keep_alive_ms
            latencies.append(latency)
            peak = max(peak, len(self._instances))
            self.gb_seconds += (self.spec.memory_mb / 1024.0
                                * latency / 1000.0)
        self._clock_ms += window_ms
        self.total_invocations += requests
        self.total_cold_starts += cold
        if latencies:
            mean = float(np.mean(latencies))
            p95 = float(np.percentile(latencies, 95))
        else:
            mean = p95 = 0.0
        return FaasWindowStats(
            invocations=requests, cold_starts=cold,
            mean_latency_ms=mean, p95_latency_ms=p95,
            max_concurrency=peak,
        )


@dataclass(frozen=True)
class FaasBilling:
    """Serverless pricing: per-invocation fee plus GB-second rate.

    Defaults approximate 2020-era Chinese FaaS list prices (RMB).
    """

    per_million_invocations: float = 1.33
    per_gb_second: float = 0.000110592

    def cost(self, invocations: int, gb_seconds: float) -> float:
        if invocations < 0 or gb_seconds < 0:
            raise ConfigurationError("negative billing inputs")
        return (invocations / 1e6 * self.per_million_invocations
                + gb_seconds * self.per_gb_second)


@dataclass(frozen=True)
class VmVsFaasComparison:
    """Cost + latency of serving one load shape both ways."""

    vm_monthly_rmb: float
    faas_monthly_rmb: float
    faas_mean_latency_ms: float
    faas_p95_latency_ms: float
    faas_cold_start_fraction: float
    vm_peak_utilization: float

    @property
    def faas_cheaper(self) -> bool:
        return self.faas_monthly_rmb < self.vm_monthly_rmb


def compare_vm_vs_faas(request_rate_per_s: np.ndarray, window_s: float,
                       spec: FunctionSpec, vm_monthly_rmb: float,
                       vm_capacity_rps: float,
                       rng: np.random.Generator,
                       billing: FaasBilling | None = None,
                       keep_alive_s: float = 600.0) -> VmVsFaasComparison:
    """Serve a request-rate series with a reserved VM vs a function pool.

    The VM must be provisioned for the peak (the §4.2 over-provisioning
    problem); the function pool scales with load but pays cold starts
    whenever the diurnal curve climbs.

    Raises:
        ConfigurationError: on empty series or non-positive capacity.
    """
    rate = np.asarray(request_rate_per_s, dtype=float)
    if rate.size == 0:
        raise ConfigurationError("request-rate series is empty")
    if vm_capacity_rps <= 0 or vm_monthly_rmb <= 0:
        raise ConfigurationError("VM capacity and price must be positive")
    billing = billing if billing is not None else FaasBilling()
    runtime = FaasRuntime(spec, keep_alive_s=keep_alive_s)

    latencies_mean, latencies_p95, weights = [], [], []
    for rps in rate:
        requests = int(round(rps * window_s))
        stats = runtime.run_window(requests, window_s, rng)
        if requests:
            latencies_mean.append(stats.mean_latency_ms)
            latencies_p95.append(stats.p95_latency_ms)
            weights.append(requests)

    span_s = rate.size * window_s
    month_scale = (30.0 * 24 * 3600) / span_s
    faas_cost = billing.cost(runtime.total_invocations,
                             runtime.gb_seconds) * month_scale
    mean_latency = float(np.average(latencies_mean, weights=weights)) \
        if weights else 0.0
    p95_latency = float(max(latencies_p95)) if latencies_p95 else 0.0
    cold_fraction = (runtime.total_cold_starts
                     / max(runtime.total_invocations, 1))
    return VmVsFaasComparison(
        vm_monthly_rmb=vm_monthly_rmb,
        faas_monthly_rmb=faas_cost,
        faas_mean_latency_ms=mean_latency,
        faas_p95_latency_ms=p95_latency,
        faas_cold_start_fraction=cold_fraction,
        vm_peak_utilization=float(rate.max() / vm_capacity_rps),
    )
