"""Builders for centralised cloud platforms (AliCloud-like, Azure-like).

A cloud platform is the same :class:`~repro.platform.cluster.Platform`
container with the opposite shape: a handful of regions in the biggest
metros, each hosting many large servers ("a site in cloud computing often
hosts thousands or even millions of servers", §2 — scaled down by the
scenario but kept orders of magnitude above an edge site).
"""

from __future__ import annotations

import numpy as np

from ..config import Scenario
from ..geo.topology import place_cloud_regions
from .cluster import Platform
from .entities import PlatformKind, ResourceVector, Server, Site

#: Cloud regions run large, homogeneous fleets of big hosts.
CLOUD_SERVER_SKUS: tuple[tuple[ResourceVector, float], ...] = (
    (ResourceVector(64, 256, 16_000), 0.4),
    (ResourceVector(96, 384, 16_000), 0.4),
    (ResourceVector(128, 512, 32_000), 0.2),
)

#: Scaled-down servers per cloud region; still ~10x an average edge site.
DEFAULT_SERVERS_PER_REGION = 400


def build_cloud_platform(scenario: Scenario,
                         rng: np.random.Generator | None = None,
                         name: str = "vCloud",
                         region_count: int | None = None,
                         servers_per_region: int = DEFAULT_SERVERS_PER_REGION,
                         ) -> Platform:
    """Construct an empty cloud platform with ``region_count`` regions."""
    rng = rng if rng is not None else scenario.random.stream(f"cloud-{name}")
    count = region_count if region_count is not None else scenario.cloud_region_count
    placements = place_cloud_regions(count, rng)
    platform = Platform(name=name, kind=PlatformKind.CLOUD)

    skus = [sku for sku, _ in CLOUD_SERVER_SKUS]
    weights = np.array([w for _, w in CLOUD_SERVER_SKUS])
    weights = weights / weights.sum()

    for index, placed in enumerate(placements):
        site_id = f"{name.lower()}-r{index:02d}"
        site = Site(
            site_id=site_id,
            name=f"{placed.city.name}-region",
            city=placed.city.name,
            province=placed.province,
            location=placed.location,
            gateway_bandwidth_mbps=1_000_000.0,  # effectively unconstrained
        )
        sku_idx = rng.choice(len(skus), size=servers_per_region, p=weights)
        for s_index in range(servers_per_region):
            site.servers.append(Server(
                server_id=f"{site_id}-m{s_index:04d}",
                site_id=site_id,
                capacity=skus[int(sku_idx[s_index])],
            ))
        platform.add_site(site)
    return platform
