"""Platform build-out simulation (§4.3's second imbalance driver).

The paper attributes part of NEP's across-site skew to growth: "as NEP
is still evolving rapidly, new sites are added to NEP frequently", so
young sites sit near-empty next to mature ones.  This module replays
that build-out: subscriptions arrive in epochs while the site inventory
expands, and each epoch's sales-rate snapshot shows the skew evolving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import Scenario
from ..errors import ConfigurationError, PlacementError
from ..geo.regions import CHINA_CITIES
from ..workload.subscription import sample_nep_spec
from .cluster import Platform
from .entities import App, Customer
from .nep import build_nep_platform
from .placement import NepPlacementPolicy, SubscriptionRequest


@dataclass(frozen=True)
class GrowthEpoch:
    """One epoch's state: active sites and their sales-rate snapshot."""

    index: int
    active_sites: int
    placed_vms: int
    #: CPU sales rate of every *active* site (loaded or not).
    site_cpu_rates: np.ndarray

    @property
    def loaded_rates(self) -> np.ndarray:
        return self.site_cpu_rates[self.site_cpu_rates > 0]

    @property
    def skew(self) -> float:
        """P95/P5 across all active sites, floored (§4.1/§4.3 skew).

        Empty just-activated sites count: that a brand-new site has sold
        nothing *is* the growth-driven imbalance the paper describes.
        """
        if self.site_cpu_rates.size < 2:
            return 1.0
        hi = float(np.percentile(self.site_cpu_rates, 95))
        lo = max(float(np.percentile(self.site_cpu_rates, 5)), 1e-3)
        return max(hi, 1e-3) / lo


@dataclass
class GrowthResult:
    """Outcome of a build-out simulation."""

    platform: Platform
    epochs: list[GrowthEpoch] = field(default_factory=list)
    #: site_id -> the epoch at which the site went live (0 = day one).
    activation_epoch: dict[str, int] = field(default_factory=dict)
    #: Subscriptions that found no feasible capacity during the replay.
    unplaced_requests: int = 0

    @property
    def final_skew(self) -> float:
        return self.epochs[-1].skew

    def rate_by_activation_epoch(self) -> dict[int, float]:
        """Mean final CPU sales rate of sites grouped by activation epoch.

        The §4.3 growth signature: sites that went live early have sold
        more than late arrivals.
        """
        rates: dict[int, list[float]] = {}
        for site in self.platform.sites:
            epoch = self.activation_epoch[site.site_id]
            rates.setdefault(epoch, []).append(site.cpu_sales_rate())
        return {epoch: float(np.mean(values))
                for epoch, values in sorted(rates.items())}


def simulate_growth(scenario: Scenario, epochs: int = 8,
                    initial_fraction: float = 0.3,
                    requests_per_epoch: int = 10,
                    rng: np.random.Generator | None = None) -> GrowthResult:
    """Replay NEP's build-out over ``epochs`` subscription waves.

    The platform starts with ``initial_fraction`` of its sites active;
    the remainder activate linearly across the epochs.  Every epoch
    places ``requests_per_epoch`` fresh subscriptions on the sites active
    *at that time* — which is exactly why mature sites end up fuller.

    Demand is geo-scoped: each subscription targets a population-weighted
    province, as the paper's customers do ("I need 10 virtual machines in
    Guangdong province").  Pass ``initial_fraction=1.0`` for the static
    (no-growth) baseline.

    Raises:
        ConfigurationError: on out-of-range parameters.
    """
    if epochs < 1:
        raise ConfigurationError(f"epochs must be >= 1, got {epochs}")
    if not 0.0 < initial_fraction <= 1.0:
        raise ConfigurationError(
            f"initial_fraction must be in (0, 1], got {initial_fraction}"
        )
    if requests_per_epoch < 1:
        raise ConfigurationError("requests_per_epoch must be >= 1")
    rng = rng if rng is not None else scenario.random.stream("growth")

    full = build_nep_platform(scenario,
                              rng=scenario.random.stream("growth-topo"))
    # Activation order is random: new NEP sites open wherever the next
    # ISP room deal lands, not in demand order.
    order = rng.permutation(len(full.sites))
    all_sites = [full.sites[int(i)] for i in order]
    initial = max(1, int(round(initial_fraction * len(all_sites))))

    province_pops: dict[str, float] = {}
    for c in CHINA_CITIES:
        province_pops[c.province] = (province_pops.get(c.province, 0.0)
                                     + c.population_m)

    platform = Platform(name=full.name, kind=full.kind)
    result = GrowthResult(platform=platform)
    for site in all_sites[:initial]:
        platform.add_site(site)
        result.activation_epoch[site.site_id] = 0

    policy = NepPlacementPolicy()
    unplaced = 0
    app_index = 0
    for epoch in range(epochs):
        # Activate this epoch's share of the remaining sites.
        target_active = initial + int(round(
            (len(all_sites) - initial) * (epoch + 1) / epochs))
        for site in all_sites[len(platform.sites):target_active]:
            platform.add_site(site)
            result.activation_epoch[site.site_id] = epoch

        provinces = sorted({s.province for s in platform.sites})
        weights = np.array([province_pops.get(p, 0.1) for p in provinces])
        weights = weights / weights.sum()
        for _ in range(requests_per_epoch):
            customer = Customer(f"g-c{app_index:04d}", f"cust-{app_index}")
            platform.register_customer(customer)
            app = App(f"g-a{app_index:04d}", customer.customer_id,
                      "live_streaming", f"img-{app_index}")
            platform.register_app(app)
            province = provinces[int(rng.choice(len(provinces), p=weights))]
            request = SubscriptionRequest(
                customer_id=customer.customer_id, app_id=app.app_id,
                image_id=app.image_id, spec=sample_nep_spec(rng),
                vm_count=int(rng.integers(1, 6)), province=province,
            )
            try:
                policy.place(platform, request)
            except PlacementError:
                unplaced += 1
            app_index += 1

        result.epochs.append(GrowthEpoch(
            index=epoch,
            active_sites=len(platform.sites),
            placed_vms=len(platform.vms),
            site_cpu_rates=np.array(platform.site_cpu_sales_rates()),
        ))
    result.unplaced_requests = unplaced
    platform.validate()
    return result
