"""End-user request scheduling across an app's VMs (§2, §4.3).

Once NEP allocates VMs, the *customer* routes end-user requests, "similar
to traffic routing in a CDN ... based on DNS or HTTP 302".  The paper
shows this frequently goes wrong (Figure 13), and its implications call
for load-aware GSLB-style scheduling.  Both strategies are implemented:

* :class:`NearestSiteScheduler` — today's practice: pure geo-proximity.
* :class:`LoadAwareScheduler` — the §4.3 proposal: trade a bounded amount
  of extra network delay for balanced VM load.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable

from ..errors import SchedulingError
from ..geo.coords import GeoPoint
from .cluster import Platform
from .entities import VM

#: Callback reporting the current load of a VM in [0, 1].
LoadProvider = Callable[[str], float]


@dataclass(frozen=True)
class SchedulingDecision:
    """Where one end-user request was sent and why."""

    vm_id: str
    site_id: str
    distance_km: float
    load: float | None = None


class RequestScheduler(abc.ABC):
    """Strategy interface for routing one end-user request to a VM."""

    name: str = "abstract"

    @abc.abstractmethod
    def schedule(self, platform: Platform, app_id: str,
                 user_location: GeoPoint) -> SchedulingDecision:
        """Pick the serving VM for a request from ``user_location``.

        Raises:
            SchedulingError: when the app has no placed VMs.
        """

    @staticmethod
    def _placed_vms(platform: Platform, app_id: str) -> list[VM]:
        vms = [vm for vm in platform.vms_of_app(app_id) if vm.placed]
        if not vms:
            raise SchedulingError(f"app {app_id!r} has no placed VMs")
        return vms


class NearestSiteScheduler(RequestScheduler):
    """DNS/HTTP-302 style geo-routing: nearest site wins, always."""

    name = "nearest-site"

    def schedule(self, platform: Platform, app_id: str,
                 user_location: GeoPoint) -> SchedulingDecision:
        vms = self._placed_vms(platform, app_id)
        best = min(
            vms,
            key=lambda vm: platform.site(vm.site_id).location
            .distance_km(user_location),
        )
        site = platform.site(best.site_id)
        return SchedulingDecision(
            vm_id=best.vm_id,
            site_id=best.site_id,
            distance_km=site.location.distance_km(user_location),
        )


class LoadAwareScheduler(RequestScheduler):
    """GSLB-style scheduling: nearest VM whose load is tolerable.

    Candidates are the VMs whose extra distance over the closest one stays
    within ``detour_km`` (§3.1 shows each site has ~10 neighbours within
    20 ms, so modest detours cost little delay).  Among candidates the
    least-loaded VM wins; if every candidate is above ``overload``, the
    search widens to all VMs as a last resort.
    """

    name = "load-aware"

    def __init__(self, load: LoadProvider, detour_km: float = 300.0,
                 overload: float = 0.8) -> None:
        if detour_km < 0:
            raise SchedulingError(f"detour_km must be >= 0, got {detour_km}")
        if not 0.0 < overload <= 1.0:
            raise SchedulingError(f"overload must be in (0, 1], got {overload}")
        self._load = load
        self._detour_km = detour_km
        self._overload = overload

    def schedule(self, platform: Platform, app_id: str,
                 user_location: GeoPoint) -> SchedulingDecision:
        vms = self._placed_vms(platform, app_id)
        distances = {
            vm.vm_id: platform.site(vm.site_id).location
            .distance_km(user_location)
            for vm in vms
        }
        nearest_distance = min(distances.values())
        candidates = [
            vm for vm in vms
            if distances[vm.vm_id] <= nearest_distance + self._detour_km
        ]
        viable = [vm for vm in candidates
                  if self._load(vm.vm_id) < self._overload]
        pool = viable if viable else vms
        best = min(pool, key=lambda vm: (self._load(vm.vm_id),
                                         distances[vm.vm_id]))
        return SchedulingDecision(
            vm_id=best.vm_id,
            site_id=best.site_id,
            distance_km=distances[best.vm_id],
            load=self._load(best.vm_id),
        )
