"""Builder for the NEP edge platform topology.

Reproduces the structure §2 describes: hundreds of sites across China
(two orders of magnitude more than a cloud provider's regions in one
country), each constrained by space and electricity to tens — at most a
couple hundred — servers.
"""

from __future__ import annotations

import numpy as np

from ..config import Scenario
from ..geo.topology import place_edge_sites
from .cluster import Platform
from .entities import PlatformKind, ResourceVector, Server, Site

#: Edge server SKUs (cores, memory GB, disk GB) with sampling weights.
#: Edge racks standardise on a few mid-size SKUs rather than cloud-scale
#: big iron.
EDGE_SERVER_SKUS: tuple[tuple[ResourceVector, float], ...] = (
    (ResourceVector(32, 128, 4_000), 0.35),
    (ResourceVector(48, 192, 8_000), 0.35),
    (ResourceVector(64, 256, 8_000), 0.20),
    (ResourceVector(96, 384, 16_000), 0.10),
)


def build_nep_platform(scenario: Scenario,
                       rng: np.random.Generator | None = None,
                       name: str = "NEP") -> Platform:
    """Construct an empty (no VMs yet) NEP platform for a scenario.

    Site count, per-site server ranges, and gateway bandwidths come from
    the scenario; site locations are population-weighted over the China
    gazetteer with per-metro jitter.
    """
    rng = rng if rng is not None else scenario.random.stream("nep-topology")
    placements = place_edge_sites(scenario.nep_site_count, rng)
    platform = Platform(name=name, kind=PlatformKind.EDGE)

    skus = [sku for sku, _ in EDGE_SERVER_SKUS]
    weights = np.array([w for _, w in EDGE_SERVER_SKUS])
    weights = weights / weights.sum()

    for index, placed in enumerate(placements):
        site_id = f"nep-s{index:04d}"
        # Server counts skew small: most sites are cabinets in ISP rooms,
        # a few metro hubs run larger rooms ("tens or hundreds", §2).
        low = scenario.nep_servers_per_site_min
        high = scenario.nep_servers_per_site_max
        span = high - low
        server_count = low + int(round(span * float(rng.beta(1.4, 3.5))))
        site = Site(
            site_id=site_id,
            name=f"{placed.city.name}-{index:04d}",
            city=placed.city.name,
            province=placed.province,
            location=placed.location,
            gateway_bandwidth_mbps=float(rng.choice([5_000, 10_000, 20_000])),
        )
        sku_idx = rng.choice(len(skus), size=server_count, p=weights)
        for s_index in range(server_count):
            site.servers.append(Server(
                server_id=f"{site_id}-m{s_index:03d}",
                site_id=site_id,
                capacity=skus[int(sku_idx[s_index])],
            ))
        platform.add_site(site)
    return platform
