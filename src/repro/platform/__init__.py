"""Platform substrate: topology entities, builders, placement, scheduling."""

from .cloud import CLOUD_SERVER_SKUS, build_cloud_platform
from .cluster import Platform
from .entities import (
    App,
    Customer,
    PlatformKind,
    ResourceVector,
    Server,
    Site,
    VM,
    VMSpec,
)
from .growth import GrowthEpoch, GrowthResult, simulate_growth
from .migration import (
    MigrationCost,
    RebalanceMove,
    UsageRebalancer,
    migrate,
    predict_migration_cost,
)
from .nep import EDGE_SERVER_SKUS, build_nep_platform
from .placement import (
    BestFitPolicy,
    FirstFitPolicy,
    NepPlacementPolicy,
    PlacementPolicy,
    RandomPolicy,
    SubscriptionRequest,
)
from .serverless import (
    FaasBilling,
    FaasRuntime,
    FaasWindowStats,
    FunctionSpec,
    VmVsFaasComparison,
    compare_vm_vs_faas,
)
from .scheduling import (
    LoadAwareScheduler,
    NearestSiteScheduler,
    RequestScheduler,
    SchedulingDecision,
)

__all__ = [
    "App",
    "BestFitPolicy",
    "CLOUD_SERVER_SKUS",
    "Customer",
    "EDGE_SERVER_SKUS",
    "FaasBilling",
    "FaasRuntime",
    "FaasWindowStats",
    "FunctionSpec",
    "FirstFitPolicy",
    "GrowthEpoch",
    "GrowthResult",
    "LoadAwareScheduler",
    "MigrationCost",
    "NearestSiteScheduler",
    "NepPlacementPolicy",
    "PlacementPolicy",
    "Platform",
    "PlatformKind",
    "RandomPolicy",
    "RebalanceMove",
    "RequestScheduler",
    "ResourceVector",
    "SchedulingDecision",
    "Server",
    "Site",
    "SubscriptionRequest",
    "UsageRebalancer",
    "VM",
    "VMSpec",
    "VmVsFaasComparison",
    "build_cloud_platform",
    "build_nep_platform",
    "compare_vm_vs_faas",
    "migrate",
    "predict_migration_cost",
    "simulate_growth",
]
