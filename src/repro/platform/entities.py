"""Platform entities: sites, servers, VMs, apps, customers.

Terminology follows §2 of the paper exactly: a *site* is a datacenter at
one location; a site hosts many *servers*; a server hosts many *VMs*; the
VMs sharing one system image and one customer form an *edge app*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import CapacityError
from ..geo.coords import GeoPoint


class PlatformKind(enum.Enum):
    """Whether a platform is an edge platform or a centralised cloud."""

    EDGE = "edge"
    CLOUD = "cloud"


@dataclass(frozen=True)
class ResourceVector:
    """A bundle of (cpu cores, memory GB, disk GB) used for capacity math."""

    cpu_cores: float
    memory_gb: float
    disk_gb: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_cores < 0 or self.memory_gb < 0 or self.disk_gb < 0:
            raise CapacityError(f"negative resource vector: {self}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu_cores + other.cpu_cores,
                              self.memory_gb + other.memory_gb,
                              self.disk_gb + other.disk_gb)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu_cores - other.cpu_cores,
                              self.memory_gb - other.memory_gb,
                              self.disk_gb - other.disk_gb)

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """True if this demand fits inside ``capacity`` on every dimension."""
        return (self.cpu_cores <= capacity.cpu_cores
                and self.memory_gb <= capacity.memory_gb
                and self.disk_gb <= capacity.disk_gb)

    @classmethod
    def zero(cls) -> "ResourceVector":
        return cls(0.0, 0.0, 0.0)


@dataclass(frozen=True)
class VMSpec:
    """The resources a customer subscribes for one VM (§2.1.2 item 2)."""

    cpu_cores: int
    memory_gb: int
    disk_gb: int = 0
    bandwidth_mbps: float = 0.0  # subscribed public egress bandwidth

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0:
            raise CapacityError(f"VM needs at least 1 core, got {self.cpu_cores}")
        if self.memory_gb <= 0:
            raise CapacityError(f"VM needs memory, got {self.memory_gb} GB")
        if self.disk_gb < 0 or self.bandwidth_mbps < 0:
            raise CapacityError(f"negative disk or bandwidth in {self}")

    @property
    def resources(self) -> ResourceVector:
        return ResourceVector(float(self.cpu_cores), float(self.memory_gb),
                              float(self.disk_gb))


@dataclass(frozen=True)
class Customer:
    """A platform tenant."""

    customer_id: str
    name: str
    segment: str = "business"  # "business" or "individual" (§4.1)


@dataclass(frozen=True)
class App:
    """An application = one customer + one system image (§2 terminology)."""

    app_id: str
    customer_id: str
    category: str
    image_id: str


@dataclass
class VM:
    """One IaaS virtual machine placed on a server."""

    vm_id: str
    spec: VMSpec
    customer_id: str
    app_id: str
    image_id: str
    os_type: str = "linux"
    kernel: str = "5.4"
    server_id: str | None = None
    site_id: str | None = None

    @property
    def placed(self) -> bool:
        return self.server_id is not None


@dataclass
class Server:
    """A physical machine inside a site."""

    server_id: str
    site_id: str
    capacity: ResourceVector
    vm_ids: list[str] = field(default_factory=list)
    allocated: ResourceVector = field(default_factory=ResourceVector.zero)

    @property
    def free(self) -> ResourceVector:
        return self.capacity - self.allocated

    def can_host(self, spec: VMSpec) -> bool:
        return spec.resources.fits_within(self.free)

    def attach(self, vm: VM) -> None:
        """Place ``vm`` on this server, updating the allocation ledger.

        Raises:
            CapacityError: if the VM does not fit in the free capacity.
        """
        if not self.can_host(vm.spec):
            raise CapacityError(
                f"VM {vm.vm_id} ({vm.spec.cpu_cores}C/{vm.spec.memory_gb}G) "
                f"does not fit on server {self.server_id} "
                f"(free {self.free.cpu_cores:.0f}C/{self.free.memory_gb:.0f}G)"
            )
        self.vm_ids.append(vm.vm_id)
        self.allocated = self.allocated + vm.spec.resources
        vm.server_id = self.server_id
        vm.site_id = self.site_id

    def detach(self, vm: VM) -> None:
        """Remove ``vm`` from this server (used by migration).

        Raises:
            CapacityError: if the VM is not hosted here.
        """
        if vm.vm_id not in self.vm_ids:
            raise CapacityError(
                f"VM {vm.vm_id} is not hosted on server {self.server_id}"
            )
        self.vm_ids.remove(vm.vm_id)
        self.allocated = self.allocated - vm.spec.resources
        vm.server_id = None
        vm.site_id = None

    def cpu_sales_rate(self) -> float:
        """Fraction of CPU cores sold to customers (§4.1 "sales rate")."""
        if self.capacity.cpu_cores == 0:
            return 0.0
        return self.allocated.cpu_cores / self.capacity.cpu_cores

    def memory_sales_rate(self) -> float:
        """Fraction of memory sold to customers."""
        if self.capacity.memory_gb == 0:
            return 0.0
        return self.allocated.memory_gb / self.capacity.memory_gb


@dataclass
class Site:
    """A datacenter at one geographical location."""

    site_id: str
    name: str
    city: str
    province: str
    location: GeoPoint
    servers: list[Server] = field(default_factory=list)
    #: Subscribed egress capacity available at the site gateway, Mbps.
    gateway_bandwidth_mbps: float = 10_000.0

    @property
    def server_count(self) -> int:
        return len(self.servers)

    @property
    def capacity(self) -> ResourceVector:
        total = ResourceVector.zero()
        for server in self.servers:
            total = total + server.capacity
        return total

    @property
    def allocated(self) -> ResourceVector:
        total = ResourceVector.zero()
        for server in self.servers:
            total = total + server.allocated
        return total

    def cpu_sales_rate(self) -> float:
        cap = self.capacity
        if cap.cpu_cores == 0:
            return 0.0
        return self.allocated.cpu_cores / cap.cpu_cores

    def memory_sales_rate(self) -> float:
        cap = self.capacity
        if cap.memory_gb == 0:
            return 0.0
        return self.allocated.memory_gb / cap.memory_gb
