"""The §4.4 prediction experiment harness.

Protocol, exactly as the paper describes: take one month of a VM's CPU
readings, aggregate them into half-hour windows (max and mean), split
into 3 weeks of training and 1 week of testing, train Holt-Winters and
the LSTM per VM per target, and score one-step-ahead forecasts by RMSE
in CPU-utilisation percent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PredictionError
from .autoregressive import SeasonalARForecaster
from .holtwinters import HoltWinters
from .lstm import LSTMForecaster

MINUTES_PER_DAY = 24 * 60


def window_aggregate(series: np.ndarray, readings_per_window: int,
                     reducer: str) -> np.ndarray:
    """Aggregate raw readings into prediction windows (max or mean).

    Raises:
        PredictionError: on a partial trailing window or unknown reducer.
    """
    series = np.asarray(series, dtype=float)
    if readings_per_window < 1:
        raise PredictionError(
            f"readings_per_window must be >= 1, got {readings_per_window}"
        )
    if series.size % readings_per_window:
        raise PredictionError(
            f"{series.size} readings is not a whole number of "
            f"{readings_per_window}-reading windows"
        )
    blocks = series.reshape(-1, readings_per_window)
    if reducer == "max":
        return blocks.max(axis=1)
    if reducer == "mean":
        return blocks.mean(axis=1)
    raise PredictionError(f"unknown reducer {reducer!r}")


@dataclass(frozen=True)
class PredictionOutcome:
    """Per-VM result of one (model, target) prediction run."""

    vm_id: str
    model: str        # "holt-winters", "lstm", or "seasonal-ar"
    target: str       # "max" or "mean"
    rmse_percent: float


@dataclass(frozen=True)
class ExperimentSpec:
    """Windowing and split settings for a prediction experiment."""

    cpu_interval_minutes: int
    window_minutes: int = 30
    train_days: int = 21
    test_days: int = 7

    @property
    def readings_per_window(self) -> int:
        if self.window_minutes % self.cpu_interval_minutes:
            raise PredictionError(
                "prediction window must be a multiple of the CPU interval"
            )
        return self.window_minutes // self.cpu_interval_minutes

    @property
    def windows_per_day(self) -> int:
        return MINUTES_PER_DAY // self.window_minutes


def split_train_test(windows: np.ndarray,
                     spec: ExperimentSpec) -> tuple[np.ndarray, np.ndarray]:
    """Split windowed series into (train, test) by day counts.

    Raises:
        PredictionError: if the series is shorter than train + test days.
    """
    per_day = spec.windows_per_day
    need = (spec.train_days + spec.test_days) * per_day
    if windows.size < need:
        raise PredictionError(
            f"need {need} windows ({spec.train_days}+{spec.test_days} days), "
            f"got {windows.size}"
        )
    train = windows[: spec.train_days * per_day]
    test = windows[spec.train_days * per_day: need]
    return train, test


def evaluate_holt_winters(vm_id: str, raw_series: np.ndarray, target: str,
                          spec: ExperimentSpec) -> PredictionOutcome:
    """Run the Holt-Winters leg of the experiment for one VM."""
    windows = window_aggregate(raw_series, spec.readings_per_window, target)
    train, test = split_train_test(windows, spec)
    model = HoltWinters(season_length=spec.windows_per_day)
    model.fit(train)
    forecasts = model.walk_forward(test)
    forecasts = np.clip(forecasts, 0.0, 1.0)
    rmse = float(np.sqrt(np.mean((forecasts - test) ** 2))) * 100.0
    return PredictionOutcome(vm_id=vm_id, model="holt-winters",
                             target=target, rmse_percent=rmse)


def evaluate_lstm(vm_id: str, raw_series: np.ndarray, target: str,
                  spec: ExperimentSpec, epochs: int = 30,
                  seed: int = 0) -> PredictionOutcome:
    """Run the LSTM leg of the experiment for one VM."""
    windows = window_aggregate(raw_series, spec.readings_per_window, target)
    train, test = split_train_test(windows, spec)
    model = LSTMForecaster(window=spec.windows_per_day // 2,
                           epochs=epochs, seed=seed)
    model.fit(train)
    forecasts = np.clip(model.walk_forward(train, test), 0.0, 1.0)
    rmse = float(np.sqrt(np.mean((forecasts - test) ** 2))) * 100.0
    return PredictionOutcome(vm_id=vm_id, model="lstm",
                             target=target, rmse_percent=rmse)


def evaluate_seasonal_ar(vm_id: str, raw_series: np.ndarray, target: str,
                         spec: ExperimentSpec,
                         order: int = 4) -> PredictionOutcome:
    """Run the seasonal-AR (ARIMA-family) leg for one VM."""
    windows = window_aggregate(raw_series, spec.readings_per_window, target)
    train, test = split_train_test(windows, spec)
    model = SeasonalARForecaster(season_length=spec.windows_per_day,
                                 order=order)
    model.fit(train)
    forecasts = np.clip(model.walk_forward(test), 0.0, 1.0)
    rmse = float(np.sqrt(np.mean((forecasts - test) ** 2))) * 100.0
    return PredictionOutcome(vm_id=vm_id, model="seasonal-ar",
                             target=target, rmse_percent=rmse)
