"""Seasonality strength of a usage series (Wang/Smith/Hyndman [92]).

§4.4 explains the edge's predictability by its stronger seasonality
(NEP mean 0.42 vs Azure 0.26).  The strength metric decomposes a series
into trend + seasonal + remainder and reports::

    strength = max(0, 1 - Var(remainder) / Var(seasonal + remainder))

using a centred-moving-average trend and phase-mean seasonal component —
the classical decomposition the characteristic-based clustering paper
builds on.
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError


def _centered_moving_average(series: np.ndarray, period: int) -> np.ndarray:
    """Classical 2xm centred moving average trend estimate."""
    kernel = np.ones(period) / period
    if period % 2 == 0:
        # Even period: average two shifted m-MAs to centre the window.
        kernel = np.convolve(np.ones(period) / period, np.ones(2) / 2)
    pad = kernel.size // 2
    padded = np.pad(series, pad_width=pad, mode="edge")
    trend = np.convolve(padded, kernel, mode="valid")
    return trend[: series.size]


def decompose(series: np.ndarray, period: int
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classical additive decomposition into (trend, seasonal, remainder).

    Raises:
        PredictionError: if the series is shorter than two periods.
    """
    series = np.asarray(series, dtype=float)
    if period < 2:
        raise PredictionError(f"period must be >= 2, got {period}")
    if series.size < 2 * period:
        raise PredictionError(
            f"need at least two periods ({2 * period} points), "
            f"got {series.size}"
        )
    trend = _centered_moving_average(series, period)
    detrended = series - trend
    phases = np.arange(series.size) % period
    seasonal_means = np.array([
        detrended[phases == p].mean() for p in range(period)
    ])
    seasonal_means -= seasonal_means.mean()
    seasonal = seasonal_means[phases]
    remainder = detrended - seasonal
    return trend, seasonal, remainder


def seasonality_strength(series: np.ndarray, period: int) -> float:
    """Seasonal strength in [0, 1]; 0 for a constant or aperiodic series."""
    _, seasonal, remainder = decompose(series, period)
    denom = float(np.var(seasonal + remainder))
    if denom == 0.0:
        return 0.0
    strength = 1.0 - float(np.var(remainder)) / denom
    return float(np.clip(strength, 0.0, 1.0))
