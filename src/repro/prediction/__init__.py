"""Forecasting substrate: Holt-Winters, numpy LSTM, seasonality, harness."""

from .autoregressive import SeasonalARForecaster
from .evaluate import (
    ExperimentSpec,
    PredictionOutcome,
    evaluate_holt_winters,
    evaluate_lstm,
    evaluate_seasonal_ar,
    split_train_test,
    window_aggregate,
)
from .holtwinters import HoltWinters
from .lstm import HIDDEN_UNITS, LSTMForecaster
from .seasonality import decompose, seasonality_strength

__all__ = [
    "ExperimentSpec",
    "HIDDEN_UNITS",
    "HoltWinters",
    "LSTMForecaster",
    "PredictionOutcome",
    "SeasonalARForecaster",
    "decompose",
    "evaluate_holt_winters",
    "evaluate_lstm",
    "evaluate_seasonal_ar",
    "seasonality_strength",
    "split_train_test",
    "window_aggregate",
]
