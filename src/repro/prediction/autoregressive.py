"""Seasonal autoregressive forecaster (the ARIMA-family baseline).

The paper's related work applies ARIMA to workload prediction (Calheiros
et al. [29]); §4.4 itself uses Holt-Winters and LSTM.  This model rounds
out the family: an AR(p) regression fitted by least squares on the
seasonally-differenced series — i.e. ARIMA(p, 0, 0) on ``y_t - y_{t-m}``
— which handles both the seasonal structure and short-range
autocorrelation with a closed-form fit.
"""

from __future__ import annotations

import numpy as np

from ..errors import PredictionError


class SeasonalARForecaster:
    """AR(p) on the seasonally differenced series, one-step forecasts.

    Args:
        season_length: observations per seasonal cycle.
        order: autoregressive order p.
        ridge: Tikhonov regulariser for the least-squares fit.
    """

    def __init__(self, season_length: int, order: int = 4,
                 ridge: float = 1e-4) -> None:
        if season_length < 2:
            raise PredictionError(
                f"season_length must be >= 2, got {season_length}"
            )
        if order < 1:
            raise PredictionError(f"order must be >= 1, got {order}")
        if ridge < 0:
            raise PredictionError(f"ridge must be >= 0, got {ridge}")
        self.season_length = season_length
        self.order = order
        self.ridge = ridge
        self._coef: np.ndarray | None = None
        self._intercept = 0.0
        self._history: list[float] | None = None

    def fit(self, series: np.ndarray) -> "SeasonalARForecaster":
        """Fit on ``series``; keeps it as the forecasting history.

        Raises:
            PredictionError: if the series is too short for the model.
        """
        series = np.asarray(series, dtype=float)
        m, p = self.season_length, self.order
        if series.size < m + p + 2:
            raise PredictionError(
                f"need at least {m + p + 2} points, got {series.size}"
            )
        diff = series[m:] - series[:-m]
        if diff.size <= p:
            raise PredictionError("differenced series shorter than order")
        # Design matrix of lagged differences.
        rows = diff.size - p
        design = np.empty((rows, p))
        for lag in range(1, p + 1):
            design[:, lag - 1] = diff[p - lag: p - lag + rows]
        target = diff[p:]
        gram = design.T @ design + self.ridge * np.eye(p)
        moments = design.T @ target
        self._coef = np.linalg.solve(gram, moments)
        self._intercept = float(target.mean()
                                - design.mean(axis=0) @ self._coef)
        self._history = series.tolist()
        return self

    def forecast_next(self) -> float:
        """One-step-ahead forecast from the stored history.

        Raises:
            PredictionError: if :meth:`fit` has not run.
        """
        if self._coef is None or self._history is None:
            raise PredictionError("forecast_next() before fit()")
        m, p = self.season_length, self.order
        history = self._history
        # Only the last p seasonal differences matter for one step.
        lags = np.array([
            history[-lag] - history[-lag - m] for lag in range(1, p + 1)
        ])
        predicted_diff = float(self._intercept + lags @ self._coef)
        return float(history[-m] + predicted_diff)

    def update(self, value: float) -> None:
        """Append one observed value to the history.

        Raises:
            PredictionError: if :meth:`fit` has not run.
        """
        if self._history is None:
            raise PredictionError("update() before fit()")
        self._history.append(float(value))

    def walk_forward(self, test_series: np.ndarray) -> np.ndarray:
        """One-step-ahead forecasts across ``test_series``."""
        test_series = np.asarray(test_series, dtype=float)
        forecasts = np.empty_like(test_series)
        for i, value in enumerate(test_series):
            forecasts[i] = self.forecast_next()
            self.update(float(value))
        return forecasts
