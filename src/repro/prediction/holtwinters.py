"""Additive Holt-Winters triple exponential smoothing (§4.4).

The paper uses Holt-Winters [31] to predict each VM's max/mean CPU usage
for the next half-hour window.  This implementation keeps (level, trend,
seasonal) state, supports one-step-ahead walk-forward forecasting, and
picks its smoothing constants by a coarse grid search on training error —
matching how the method is applied in capacity-planning practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PredictionError


@dataclass
class _HWState:
    level: float
    trend: float
    season: np.ndarray  # length = season_length
    index: int          # phase of the next observation


class HoltWinters:
    """Additive-seasonal Holt-Winters one-step forecaster.

    Args:
        season_length: observations per seasonal cycle (e.g. 48 half-hour
            windows per day).
        alpha, beta, gamma: smoothing constants; any left as None are
            chosen by grid search in :meth:`fit`.
    """

    def __init__(self, season_length: int, alpha: float | None = None,
                 beta: float | None = None, gamma: float | None = None) -> None:
        if season_length < 2:
            raise PredictionError(
                f"season_length must be >= 2, got {season_length}"
            )
        self.season_length = season_length
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self._state: _HWState | None = None

    # ---- fitting ----------------------------------------------------------

    def fit(self, series: np.ndarray) -> "HoltWinters":
        """Initialise state from ``series`` and tune smoothing constants.

        Raises:
            PredictionError: if the series is shorter than two seasons.
        """
        series = np.asarray(series, dtype=float)
        if series.size < 2 * self.season_length:
            raise PredictionError(
                f"need at least two seasons ({2 * self.season_length} points), "
                f"got {series.size}"
            )
        if self.alpha is None or self.beta is None or self.gamma is None:
            self.alpha, self.beta, self.gamma = self._grid_search(series)
        self._state = self._run(series, self.alpha, self.beta, self.gamma)[1]
        return self

    def _grid_search(self, series: np.ndarray) -> tuple[float, float, float]:
        grid_alpha = (0.1, 0.3, 0.5, 0.8)
        grid_beta = (0.0, 0.05, 0.1)
        grid_gamma = (0.05, 0.2, 0.4)
        best = (float("inf"), 0.3, 0.05, 0.2)
        for a in grid_alpha:
            for b in grid_beta:
                for g in grid_gamma:
                    sse, _ = self._run(series, a, b, g)
                    if sse < best[0]:
                        best = (sse, a, b, g)
        return best[1], best[2], best[3]

    def _initial_state(self, series: np.ndarray) -> _HWState:
        m = self.season_length
        first_cycle = series[:m]
        second_cycle = series[m:2 * m]
        level = float(first_cycle.mean())
        trend = float((second_cycle.mean() - first_cycle.mean()) / m)
        cycles = series[: (series.size // m) * m].reshape(-1, m)
        season = cycles.mean(axis=0) - cycles.mean()
        return _HWState(level=level, trend=trend, season=season.copy(), index=0)

    def _run(self, series: np.ndarray, alpha: float, beta: float,
             gamma: float) -> tuple[float, _HWState]:
        """One smoothing pass; returns (sum of squared 1-step errors, state)."""
        state = self._initial_state(series)
        m = self.season_length
        sse = 0.0
        for value in series:
            phase = state.index % m
            forecast = state.level + state.trend + state.season[phase]
            error = value - forecast
            sse += error * error
            seasonal = state.season[phase]
            new_level = alpha * (value - seasonal) + (1 - alpha) * (
                state.level + state.trend)
            state.trend = beta * (new_level - state.level) + (1 - beta) * state.trend
            state.season[phase] = gamma * (value - new_level) + (1 - gamma) * seasonal
            state.level = new_level
            state.index += 1
        return sse, state

    # ---- forecasting --------------------------------------------------------

    def forecast_next(self) -> float:
        """One-step-ahead forecast from the current state.

        Raises:
            PredictionError: if :meth:`fit` has not run.
        """
        if self._state is None:
            raise PredictionError("forecast_next() before fit()")
        state = self._state
        phase = state.index % self.season_length
        return state.level + state.trend + state.season[phase]

    def update(self, value: float) -> None:
        """Fold one observed value into the state (walk-forward step).

        Raises:
            PredictionError: if :meth:`fit` has not run.
        """
        if self._state is None:
            raise PredictionError("update() before fit()")
        assert self.alpha is not None and self.beta is not None \
            and self.gamma is not None
        state = self._state
        phase = state.index % self.season_length
        seasonal = state.season[phase]
        new_level = (self.alpha * (value - seasonal)
                     + (1 - self.alpha) * (state.level + state.trend))
        state.trend = (self.beta * (new_level - state.level)
                       + (1 - self.beta) * state.trend)
        state.season[phase] = (self.gamma * (value - new_level)
                               + (1 - self.gamma) * seasonal)
        state.level = new_level
        state.index += 1

    def walk_forward(self, test_series: np.ndarray) -> np.ndarray:
        """One-step-ahead forecasts over ``test_series``.

        Each forecast uses only data observed before that step; the true
        value is then folded into the state, as a deployed predictor would.
        """
        test_series = np.asarray(test_series, dtype=float)
        forecasts = np.empty_like(test_series)
        for i, value in enumerate(test_series):
            forecasts[i] = self.forecast_next()
            self.update(float(value))
        return forecasts
