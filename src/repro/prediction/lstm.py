"""A from-scratch numpy LSTM matching the paper's §4.4 model.

"The LSTM model has 1 layer and 24 units (2496 weights)": with scalar
input, the gate weights count 4 x (24 x (1 + 24) + 24) = 2496.  A linear
read-out maps the final hidden state to the scalar forecast.  Training is
full-batch BPTT with Adam on mean squared error; everything is vectorised
over the batch so per-VM training stays in the hundreds of milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PredictionError

HIDDEN_UNITS = 24


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class _AdamState:
    m: dict[str, np.ndarray]
    v: dict[str, np.ndarray]
    t: int = 0


class LSTMForecaster:
    """One-step-ahead scalar forecaster: window of past values -> next value.

    Args:
        window: input sequence length fed to the LSTM.
        hidden: LSTM units (paper: 24).
        epochs: full-batch Adam epochs.
        learning_rate: Adam step size.
        seed: weight-initialisation seed.
    """

    def __init__(self, window: int = 24, hidden: int = HIDDEN_UNITS,
                 epochs: int = 30, learning_rate: float = 0.01,
                 seed: int = 0) -> None:
        if window < 2:
            raise PredictionError(f"window must be >= 2, got {window}")
        if hidden < 1 or epochs < 1:
            raise PredictionError("hidden and epochs must be positive")
        self.window = window
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        rng = np.random.default_rng(seed)
        h, d = hidden, 1
        scale = 1.0 / np.sqrt(h + d)
        # Gate order along axis 1: [input, forget, cell, output].
        self.params: dict[str, np.ndarray] = {
            "W": rng.normal(0.0, scale, size=(d + h, 4 * h)),
            "b": np.zeros(4 * h),
            "Wy": rng.normal(0.0, scale, size=(h, 1)),
            "by": np.zeros(1),
        }
        # Forget-gate bias starts positive: standard trick for learnable
        # long-range memory.
        self.params["b"][h:2 * h] = 1.0
        self._adam = _AdamState(
            m={k: np.zeros_like(v) for k, v in self.params.items()},
            v={k: np.zeros_like(v) for k, v in self.params.items()},
        )
        self._mean = 0.0
        self._scale = 1.0

    @property
    def lstm_weight_count(self) -> int:
        """Number of recurrent-layer weights (paper quotes 2496 for h=24)."""
        return int(self.params["W"].size + self.params["b"].size)

    # ---- data plumbing ------------------------------------------------------

    def _make_windows(self, series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        n = series.size - self.window
        if n < 1:
            raise PredictionError(
                f"series of {series.size} points too short for window "
                f"{self.window}"
            )
        idx = np.arange(self.window)[None, :] + np.arange(n)[:, None]
        return series[idx], series[self.window:]

    # ---- forward / backward -------------------------------------------------

    def _forward(self, batch: np.ndarray):
        """Run the LSTM over a (B, T) batch; returns output and caches."""
        B, T = batch.shape
        h_units = self.hidden
        W, b = self.params["W"], self.params["b"]
        h = np.zeros((B, h_units))
        c = np.zeros((B, h_units))
        caches = []
        for t in range(T):
            x = batch[:, t:t + 1]
            z = np.concatenate([x, h], axis=1)
            gates = z @ W + b
            i = _sigmoid(gates[:, :h_units])
            f = _sigmoid(gates[:, h_units:2 * h_units])
            g = np.tanh(gates[:, 2 * h_units:3 * h_units])
            o = _sigmoid(gates[:, 3 * h_units:])
            c = f * c + i * g
            tanh_c = np.tanh(c)
            new_h = o * tanh_c
            caches.append((z, i, f, g, o, c.copy(), tanh_c, h))
            h = new_h
        y = h @ self.params["Wy"] + self.params["by"]
        return y[:, 0], h, caches

    def _backward(self, batch: np.ndarray, y_pred: np.ndarray,
                  y_true: np.ndarray, final_h: np.ndarray,
                  caches) -> dict[str, np.ndarray]:
        B, T = batch.shape
        h_units = self.hidden
        W = self.params["W"]
        d_y = (2.0 / B) * (y_pred - y_true)[:, None]
        grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        grads["Wy"] = final_h.T @ d_y
        grads["by"] = d_y.sum(axis=0)
        d_h = d_y @ self.params["Wy"].T
        d_c = np.zeros((B, h_units))
        for t in range(T - 1, -1, -1):
            z, i, f, g, o, c, tanh_c, _h_prev = caches[t]
            d_o = d_h * tanh_c
            d_c = d_c + d_h * o * (1.0 - tanh_c ** 2)
            d_i = d_c * g
            d_g = d_c * i
            c_prev = caches[t - 1][5] if t > 0 else np.zeros((B, h_units))
            d_f = d_c * c_prev
            d_gates = np.concatenate([
                d_i * i * (1 - i),
                d_f * f * (1 - f),
                d_g * (1 - g ** 2),
                d_o * o * (1 - o),
            ], axis=1)
            grads["W"] += z.T @ d_gates
            grads["b"] += d_gates.sum(axis=0)
            d_z = d_gates @ W.T
            d_h = d_z[:, 1:]
            d_c = d_c * f
        return grads

    def _adam_step(self, grads: dict[str, np.ndarray]) -> None:
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam.t += 1
        t = self._adam.t
        for key, grad in grads.items():
            np.clip(grad, -5.0, 5.0, out=grad)
            self._adam.m[key] = beta1 * self._adam.m[key] + (1 - beta1) * grad
            self._adam.v[key] = beta2 * self._adam.v[key] + (1 - beta2) * grad ** 2
            m_hat = self._adam.m[key] / (1 - beta1 ** t)
            v_hat = self._adam.v[key] / (1 - beta2 ** t)
            self.params[key] -= (self.learning_rate * m_hat
                                 / (np.sqrt(v_hat) + eps))

    # ---- public API ----------------------------------------------------------

    def fit(self, series: np.ndarray) -> "LSTMForecaster":
        """Train on a 1-D series (values in any scale; normalised inside).

        Raises:
            PredictionError: if the series is too short for the window.
        """
        series = np.asarray(series, dtype=float)
        self._mean = float(series.mean())
        self._scale = float(series.std()) or 1.0
        normalised = (series - self._mean) / self._scale
        windows, targets = self._make_windows(normalised)
        for _ in range(self.epochs):
            y_pred, final_h, caches = self._forward(windows)
            grads = self._backward(windows, y_pred, targets, final_h, caches)
            self._adam_step(grads)
        return self

    def predict_next(self, history: np.ndarray) -> float:
        """Forecast the value following ``history`` (>= window points)."""
        history = np.asarray(history, dtype=float)
        if history.size < self.window:
            raise PredictionError(
                f"history of {history.size} points shorter than window "
                f"{self.window}"
            )
        window = (history[-self.window:] - self._mean) / self._scale
        y_pred, _, _ = self._forward(window[None, :])
        return float(y_pred[0] * self._scale + self._mean)

    def walk_forward(self, train: np.ndarray, test: np.ndarray) -> np.ndarray:
        """One-step-ahead forecasts across ``test`` given ``train`` history."""
        history = np.concatenate([np.asarray(train, dtype=float),
                                  np.asarray(test, dtype=float)])
        start = np.asarray(train, dtype=float).size
        preds = np.empty(np.asarray(test).size)
        for i in range(preds.size):
            preds[i] = self.predict_next(history[:start + i])
        return preds
