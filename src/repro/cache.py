"""Content-addressed on-disk cache of expensive study artifacts.

Paper-scale workload generation takes minutes even parallelised; the
artifacts it produces are pure functions of the scenario and the code.
:class:`ArtifactCache` memoises them across *process invocations*: a
second ``repro run`` / benchmark with the same scenario loads the
generated workloads and campaign results from disk instead of
regenerating them.

Keys and invalidation
---------------------

An entry's key is ``sha256(format | code_version | artifact name |
scenario token)`` where the scenario token canonicalises every
:class:`~repro.config.Scenario` knob (seed and fault profile included)
and ``code_version`` digests every ``*.py`` file of the installed
``repro`` package.  Any source change therefore invalidates the whole
cache — deliberately conservative: a stale artifact can silently skew
every downstream figure, an unnecessary regeneration only costs time.

The one deliberate widening: *workload* artifacts drop
``fault_profile`` from their token (:data:`ARTIFACT_TOKEN_EXCLUDES`).
Workload generation never reads the fault profile — faults are built
separately and applied to campaigns and availability analyses — so a
sweep over ``off``/``paper``/``harsh`` cells shares one rendered trace
instead of paying the multi-minute render per profile.

Layout and atomicity
--------------------

Each entry is a directory ``<root>/<key[:2]>/<key>/`` holding
``meta.json`` plus its payload files.  Writers fill a ``.tmp-*``
staging directory and ``os.rename`` it into place — the rename is
atomic, so readers only ever see complete entries; a run killed
mid-write leaves at most an ignored staging directory that the next
``clear`` sweeps.  Corrupt entries (truncated payloads, unpicklable
bytes) are treated as misses and removed.

Workload series are stored as stacked ``.npy`` matrices and loaded
memory-mapped, so a warm hit on a multi-gigabyte paper-scale trace
returns in milliseconds and pages series in on demand.

Sharded workload entries
------------------------

Streamed (city-tier) workload generation writes a *sharded* entry
instead: per-kind shard directories (``cpu/shard-00000.npy``, ...) plus
a ``shards.json`` index — see :mod:`repro.shards` — produced
incrementally inside the staging directory via
:meth:`ArtifactCache.workload_writer`, then sealed with the same
meta-last + atomic-rename protocol.  ``get_workload`` transparently
loads either layout; sharded entries come back as lazy windowed
:class:`~repro.shards.ShardedSeriesMap` views, and any shard whose
header or size fails verification turns the whole entry into an
evicted miss.
"""

from __future__ import annotations

import calendar
import hashlib
import json
import os
import pickle
import shutil
import time
import uuid
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from .config import Scenario
from .errors import ConfigurationError, InjectedFault, TraceError
from .resilience import RetryPolicy, failpoint
from .resilience.retry import call_with_retry
from .shards import (
    SHARD_INDEX_NAME,
    _verify_shard,
    load_sharded_series,
    read_shard_index,
    shard_path,
)
from .trace.dataset import TraceDataset
from .workload.generator import GeneratedWorkload

#: Bump when the on-disk entry layout changes.
CACHE_FORMAT = 1

#: Files above this size record only their byte count in the entry
#: manifest, not a sha256 — hashing a 10 GB monolithic series matrix at
#: store time would dominate the write, and torn writes (the realistic
#: corruption) are caught by the size check alone.
DIGEST_MAX_BYTES = 64 << 20

#: Commit retry budget.  At the ci chaos profile's 5% injected failure
#: rate, five attempts leave a ~3e-7 chance per entry of degrading to
#: an uncached run — far below observable flake.
COMMIT_RETRY = RetryPolicy(max_attempts=5)


def _file_sha256(path: Path) -> str:
    """The sha256 hexdigest of a file's bytes (chunked read)."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _manifest(staging: Path,
              skip_dirs: frozenset[str] = frozenset()) -> dict[str, dict]:
    """The integrity manifest of a staged entry: size (and, for files
    under :data:`DIGEST_MAX_BYTES`, sha256) per relative path.

    ``skip_dirs`` omits top-level subdirectories whose integrity is
    tracked elsewhere — shard payloads carry per-shard checksums in
    ``shards.json``, so hashing them twice would double the commit cost.
    """
    files: dict[str, dict] = {}
    for path in sorted(staging.rglob("*")):
        if not path.is_file():
            continue
        rel = path.relative_to(staging)
        if rel.parts[0] in skip_dirs:
            continue
        size = path.stat().st_size
        info: dict[str, object] = {"bytes": size}
        if size <= DIGEST_MAX_BYTES:
            info["sha256"] = _file_sha256(path)
        files[rel.as_posix()] = info
    return files

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Scenario fields excluded from specific artifacts' cache keys because
#: the producing code provably never reads them.  Workload generation
#: (:mod:`repro.workload.generator`, :mod:`repro.workload.azure`) only
#: consumes topology/time/seed knobs — fault weather is built separately
#: — so fault-profile sweeps reuse one rendered trace per scenario.
ARTIFACT_TOKEN_EXCLUDES: dict[str, tuple[str, ...]] = {
    "workload_nep": ("fault_profile",),
    "workload_azure": ("fault_profile",),
    # The session engine reads only the qoe_* knobs, the topology and
    # the seed; fault weather never reaches it.
    "qoe_sessions": ("fault_profile",),
}


def default_cache_dir() -> Path:
    """The conventional cache root: ``$REPRO_CACHE_DIR`` or XDG."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the installed ``repro`` sources (the cache's code key)."""
    root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class CacheEntry:
    """One materialised artifact, as listed by ``repro cache ls``."""

    key: str
    artifact: str
    kind: str
    created_at: str
    bytes: int
    path: Path
    #: Shard-file count for sharded workload entries (0 otherwise).
    shards: int = 0


def workload_tables(dataset: TraceDataset) -> dict[str, object]:
    """The picklable table payload of a workload entry (series excluded)."""
    return {
        "platform_name": dataset.platform_name,
        "trace_days": dataset.trace_days,
        "cpu_interval_minutes": dataset.cpu_interval_minutes,
        "bw_interval_minutes": dataset.bw_interval_minutes,
        "vms": dataset.vms,
        "apps": dataset.apps,
        "sites": dataset.sites,
        "servers": dataset.servers,
        "order": list(dataset.vms),
        "private_ids": list(dataset.bw_private_series),
    }


def _dataset_from_tables(tables: dict[str, object]) -> TraceDataset:
    return TraceDataset(
        platform_name=tables["platform_name"],
        trace_days=tables["trace_days"],
        cpu_interval_minutes=tables["cpu_interval_minutes"],
        bw_interval_minutes=tables["bw_interval_minutes"],
        vms=tables["vms"], apps=tables["apps"],
        sites=tables["sites"], servers=tables["servers"],
    )


class ArtifactCache:
    """A content-addressed store of study artifacts under one root.

    With a :class:`~repro.obs.journal.RunJournal` attached (``journal=``,
    or assigned later — :class:`~repro.study.EdgeStudy` does this when it
    is given both), every lookup and store emits a structured event
    (``cache_hit`` / ``cache_miss`` / ``cache_store`` / ``cache_evict``)
    carrying the artifact name and content key, so ``repro trace`` can
    explain exactly why a run regenerated what it did.
    """

    def __init__(self, root: Path | str, journal=None) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        #: Optional :class:`repro.obs.journal.RunJournal` receiving events.
        self.journal = journal

    def _emit(self, etype: str, **fields: object) -> None:
        if self.journal is not None:
            self.journal.emit(etype, **fields)

    # ---- keys ------------------------------------------------------------

    def key(self, artifact: str, scenario: Scenario) -> str:
        """The content-addressed entry key for ``artifact`` + scenario.

        Artifacts listed in :data:`ARTIFACT_TOKEN_EXCLUDES` are keyed on
        a reduced scenario token, so scenarios differing only in fields
        the artifact ignores map to the same entry.
        """
        if not artifact:
            raise ConfigurationError("artifact name must be non-empty")
        exclude = ARTIFACT_TOKEN_EXCLUDES.get(artifact, ())
        payload = "|".join((str(CACHE_FORMAT), code_version(), artifact,
                            scenario.cache_token(exclude=exclude)))
        return hashlib.sha256(payload.encode()).hexdigest()

    def _entry_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def has(self, artifact: str, scenario: Scenario) -> bool:
        """Whether a committed entry exists for ``artifact`` + scenario.

        A pure peek: checks for the entry's ``meta.json`` (the last file
        the commit protocol writes, so its presence marks a complete
        entry) without loading anything, emitting events, or evicting.
        ``resume_status`` uses this to report which phases a resumed
        study will replay from cache.
        """
        key = self.key(artifact, scenario)
        return (self._entry_dir(key) / "meta.json").exists()

    # ---- generic pickled artifacts ---------------------------------------

    def get_object(self, artifact: str, scenario: Scenario) -> object | None:
        """Load a pickled artifact, or ``None`` on miss/corruption."""
        key = self.key(artifact, scenario)
        entry = self._entry_dir(key)
        if not (entry / "meta.json").exists():
            self._emit("cache_miss", artifact=artifact, key=key)
            return None
        try:
            failpoint("cache.read", artifact)
            with (entry / "object.pkl").open("rb") as handle:
                value = pickle.load(handle)
        except Exception:
            self._discard(entry)
            self._emit("cache_evict", artifact=artifact, key=key,
                       reason="corrupt entry")
            self._emit("cache_miss", artifact=artifact, key=key)
            return None
        self._emit("cache_hit", artifact=artifact, kind="object", key=key)
        return value

    def put_object(self, artifact: str, scenario: Scenario,
                   value: object) -> None:
        """Store a pickled artifact (no-op if already present)."""
        key = self.key(artifact, scenario)

        def write(staging: Path) -> None:
            with (staging / "object.pkl").open("wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)

        self._write_entry(key, artifact, "object", scenario, write)

    # ---- workload artifacts (mmap-backed series) -------------------------

    def get_workload(self, artifact: str,
                     scenario: Scenario) -> GeneratedWorkload | None:
        """Load a generated workload, series memory-mapped, or ``None``."""
        key = self.key(artifact, scenario)
        entry = self._entry_dir(key)
        if not (entry / "meta.json").exists():
            self._emit("cache_miss", artifact=artifact, key=key)
            return None
        try:
            failpoint("cache.read", artifact)
            workload = self._load_workload(entry)
        except Exception:
            self._discard(entry)
            self._emit("cache_evict", artifact=artifact, key=key,
                       reason="corrupt entry")
            self._emit("cache_miss", artifact=artifact, key=key)
            return None
        self._emit("cache_hit", artifact=artifact, kind="workload", key=key)
        return workload

    def put_workload(self, artifact: str, scenario: Scenario,
                     workload: GeneratedWorkload) -> None:
        """Store a generated workload under ``artifact`` + scenario."""
        key = self.key(artifact, scenario)

        def write(staging: Path) -> None:
            self._save_workload(staging, workload)

        self._write_entry(key, artifact, "workload", scenario, write)

    def workload_writer(self, artifact: str,
                        scenario: Scenario) -> "StreamedEntryWriter":
        """A staging handle for streaming a *sharded* workload entry.

        The caller (a :class:`~repro.workload.streaming.WorkloadSink`)
        writes shard files into :attr:`StreamedEntryWriter.staging` as
        blocks arrive, then calls
        :meth:`StreamedEntryWriter.commit` to seal the entry with the
        same meta-last + atomic-rename protocol as every other writer.
        """
        key = self.key(artifact, scenario)
        staging = self.root / f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
        staging.mkdir(parents=True)
        return StreamedEntryWriter(self, key, artifact, scenario, staging)

    def _save_workload(self, staging: Path,
                       workload: GeneratedWorkload) -> None:
        ds = workload.dataset
        order = list(ds.vms)
        tables = workload_tables(ds)
        with (staging / "platform.pkl").open("wb") as handle:
            pickle.dump(workload.platform, handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        with (staging / "tables.pkl").open("wb") as handle:
            pickle.dump(tables, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self._save_series(staging / "cpu.npy", ds.cpu_series, order,
                          ds.cpu_points)
        self._save_series(staging / "bw.npy", ds.bw_series, order,
                          ds.bw_points)
        if ds.bw_private_series:
            self._save_series(staging / "private.npy", ds.bw_private_series,
                              list(ds.bw_private_series), ds.bw_points)

    @staticmethod
    def _save_series(path: Path, series: dict[str, np.ndarray],
                     order: list[str], points: int) -> None:
        """Stack rows into one ``.npy``, row-by-row to bound the copy."""
        out = np.lib.format.open_memmap(path, mode="w+", dtype=np.float32,
                                        shape=(len(order), points))
        for i, vm_id in enumerate(order):
            out[i] = series[vm_id]
        out.flush()
        del out

    def _load_workload(self, entry: Path) -> GeneratedWorkload:
        with (entry / "platform.pkl").open("rb") as handle:
            platform = pickle.load(handle)
        with (entry / "tables.pkl").open("rb") as handle:
            tables = pickle.load(handle)
        dataset = _dataset_from_tables(tables)
        if (entry / SHARD_INDEX_NAME).exists():
            return self._load_sharded_workload(entry, platform, dataset,
                                               tables)
        order = tables["order"]
        cpu = np.load(entry / "cpu.npy", mmap_mode="r")
        bw = np.load(entry / "bw.npy", mmap_mode="r")
        if cpu.shape != (len(order), dataset.cpu_points):
            raise ConfigurationError("cpu series shape mismatch")
        if bw.shape != (len(order), dataset.bw_points):
            raise ConfigurationError("bw series shape mismatch")
        dataset.cpu_series = {vm_id: cpu[i] for i, vm_id in enumerate(order)}
        dataset.bw_series = {vm_id: bw[i] for i, vm_id in enumerate(order)}
        private_ids = tables["private_ids"]
        if private_ids:
            private = np.load(entry / "private.npy", mmap_mode="r")
            if private.shape != (len(private_ids), dataset.bw_points):
                raise ConfigurationError("private series shape mismatch")
            dataset.bw_private_series = {
                vm_id: private[i] for i, vm_id in enumerate(private_ids)}
        return GeneratedWorkload(platform=platform, dataset=dataset)

    @staticmethod
    def _load_sharded_workload(entry: Path, platform,
                               dataset: TraceDataset,
                               tables: dict) -> GeneratedWorkload:
        """Attach windowed shard maps for a streamed entry.

        Shard verification (headers, sizes, counts) happens inside
        :func:`repro.shards.load_sharded_series`; a failure propagates
        to :meth:`get_workload`, which evicts the entry and misses.
        """
        order = tables["order"]
        private_ids = tables["private_ids"]
        orders = {"cpu": order, "bw": order}
        if private_ids:
            orders["private"] = private_ids
        maps = load_sharded_series(entry, orders)
        dataset.attach_series(maps["cpu"], maps["bw"], maps.get("private"))
        return GeneratedWorkload(platform=platform, dataset=dataset)

    # ---- entry lifecycle --------------------------------------------------

    def _write_entry(self, key: str, artifact: str, kind: str,
                     scenario: Scenario, writer) -> None:
        final = self._entry_dir(key)
        if (final / "meta.json").exists():
            return

        def attempt() -> None:
            # A fresh staging dir per attempt: a failed write may leave
            # torn files behind, and reusing them would defeat the point
            # of retrying.
            staging = self.root / f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
            staging.mkdir(parents=True)
            try:
                failpoint("cache.commit", artifact)
                writer(staging)
                meta = {
                    "format": CACHE_FORMAT,
                    "key": key,
                    "artifact": artifact,
                    "kind": kind,
                    "code_version": code_version(),
                    "scenario": json.loads(scenario.cache_token()),
                    "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                                time.gmtime()),
                    "files": _manifest(staging),
                }
                # meta.json lands last inside the staging dir, and the
                # rename below is atomic: a reader can never observe a
                # partial entry.
                with (staging / "meta.json").open("w") as handle:
                    json.dump(meta, handle, indent=2, sort_keys=True)
                final.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.rename(staging, final)
                except OSError:
                    if not (final / "meta.json").exists():
                        raise
                    # Another process materialised the same entry first.
                    shutil.rmtree(staging, ignore_errors=True)
            except BaseException:
                shutil.rmtree(staging, ignore_errors=True)
                raise

        def retried(attempt_no: int, delay_s: float,
                    exc: BaseException) -> None:
            self._emit("cache_retry", artifact=artifact, key=key,
                       attempt=attempt_no, delay_s=round(delay_s, 6),
                       error=f"{type(exc).__name__}: {exc}")

        try:
            call_with_retry(attempt, policy=COMMIT_RETRY,
                            token=f"{artifact}|{key}", on_retry=retried)
        except (InjectedFault, OSError) as exc:
            # Degrade, don't crash: a store that cannot commit (disk
            # full, persistent fault) costs recompute time on the next
            # run, never correctness of this one.  The staging dir was
            # already cleaned up, so the cache stays readable.
            self._emit("cache_write_error", artifact=artifact, key=key,
                       error=f"{type(exc).__name__}: {exc}")
            return
        self._emit("cache_store", artifact=artifact, kind=kind, key=key,
                   bytes=self._entry_size(final))

    @staticmethod
    def _discard(entry: Path) -> None:
        shutil.rmtree(entry, ignore_errors=True)

    @staticmethod
    def _entry_size(entry_dir: Path) -> int:
        """Total on-disk bytes of an entry, shard subdirectories included.

        Tolerates files vanishing mid-walk: a concurrent eviction (or a
        racing ``clear``) must degrade a size report, never crash the
        reader that happened to be summing it.
        """
        total = 0
        try:
            # The walk itself can raise too: scandir() of a directory the
            # evictor already removed, not just stat() of a gone file.
            for p in entry_dir.rglob("*"):
                try:
                    if p.is_file():
                        total += p.stat().st_size
                except OSError:
                    continue
        except OSError:
            pass
        return total

    # ---- maintenance (the `repro cache` subcommand) ----------------------

    def entries(self) -> list[CacheEntry]:
        """All complete entries, newest first."""
        found = []
        for meta_path in sorted(self.root.glob("??/*/meta.json")):
            try:
                meta = json.loads(meta_path.read_text())
            except Exception:
                continue
            entry_dir = meta_path.parent
            found.append(CacheEntry(
                key=meta.get("key", entry_dir.name),
                artifact=meta.get("artifact", "?"),
                kind=meta.get("kind", "?"),
                created_at=meta.get("created_at", "?"),
                bytes=self._entry_size(entry_dir),
                path=entry_dir,
                shards=int(meta.get("shards", 0)),
            ))
        found.sort(key=lambda e: e.created_at, reverse=True)
        return found

    def stale_entries(self,
                      older_than_days: float | None = None
                      ) -> list[CacheEntry]:
        """Entries a ``clear`` with the same cutoff would remove.

        ``None`` selects everything; otherwise entries created more than
        ``older_than_days`` days ago.  An entry whose ``created_at``
        does not parse counts as stale — its meta is damaged and a
        warm load would evict it anyway.
        """
        entries = self.entries()
        if older_than_days is None:
            return entries
        cutoff = time.time() - older_than_days * 86_400
        stale = []
        for entry in entries:
            try:
                created = calendar.timegm(time.strptime(
                    entry.created_at, "%Y-%m-%dT%H:%M:%SZ"))
            except ValueError:
                created = 0.0
            if created < cutoff:
                stale.append(entry)
        return stale

    def clear(self, older_than_days: float | None = None,
              dry_run: bool = False) -> int:
        """Remove entries (and stale staging dirs); returns entries removed.

        ``older_than_days`` limits removal to entries older than the
        cutoff — the pruning mode behind ``repro cache clear
        --older-than`` for long-lived sweep caches, which keeps warm
        recent artifacts while reclaiming abandoned ones.  ``dry_run``
        counts without deleting.  Staging directories are swept too:
        all of them on a full clear, only ones older than the cutoff
        otherwise (a live writer may own a fresh one).
        """
        stale = self.stale_entries(older_than_days)
        if dry_run:
            return len(stale)
        for entry in stale:
            shutil.rmtree(entry.path, ignore_errors=True)
        cutoff = (None if older_than_days is None
                  else time.time() - older_than_days * 86_400)
        for staging in self.root.glob(".tmp-*"):
            try:
                if cutoff is not None and staging.stat().st_mtime >= cutoff:
                    continue
            except OSError:
                pass
            shutil.rmtree(staging, ignore_errors=True)
        return len(stale)

    def info(self) -> dict[str, object]:
        """Summary stats for ``repro cache info``."""
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(e.bytes for e in entries),
            "sharded_entries": sum(1 for e in entries if e.shards),
            "shard_files": sum(e.shards for e in entries),
            "code_version": code_version(),
        }

    # ---- integrity (the `repro cache verify` subcommand) -----------------

    def verify(self, repair: bool = False,
               deep: bool = True) -> dict[str, object]:
        """Integrity-check every entry; optionally evict the damaged ones.

        Each entry's manifest (sizes + sha256 for small files) is
        checked, and sharded entries additionally get their per-shard
        payload checksums verified (``deep=False`` downgrades both to
        structural checks: presence, sizes, shard headers).  With
        ``repair=True``, damaged entries are evicted — the next run
        regenerates them — and abandoned staging directories older than
        an hour are swept.

        Returns a report dict: ``checked``, ``ok``, ``problems`` (one
        ``{key, artifact, issues}`` row per damaged entry),
        ``stale_staging``, and ``repaired``.
        """
        problems: list[dict[str, object]] = []
        checked = 0
        for meta_path in sorted(self.root.glob("??/*/meta.json")):
            entry_dir = meta_path.parent
            checked += 1
            artifact, issues = self._verify_entry(entry_dir, deep=deep)
            if not issues:
                continue
            problems.append({"key": entry_dir.name, "artifact": artifact,
                             "issues": issues})
            if repair:
                self._discard(entry_dir)
                self._emit("cache_evict", artifact=artifact,
                           key=entry_dir.name,
                           reason=f"verify: {issues[0]}")
        stale_staging = 0
        cutoff = time.time() - 3600
        for staging in self.root.glob(".tmp-*"):
            try:
                if staging.stat().st_mtime >= cutoff:
                    continue  # possibly a live writer's staging dir
            except OSError:
                continue
            stale_staging += 1
            if repair:
                shutil.rmtree(staging, ignore_errors=True)
        return {
            "root": str(self.root),
            "checked": checked,
            "ok": checked - len(problems),
            "problems": problems,
            "stale_staging": stale_staging,
            "repaired": (len(problems) + stale_staging) if repair else 0,
        }

    def _verify_entry(self, entry_dir: Path,
                      deep: bool) -> tuple[str, list[str]]:
        """One entry's integrity issues (empty list = healthy)."""
        try:
            meta = json.loads((entry_dir / "meta.json").read_text())
        except Exception as exc:  # noqa: BLE001 - any damage counts
            return "?", [f"unreadable meta.json: {type(exc).__name__}"]
        artifact = str(meta.get("artifact", "?"))
        issues: list[str] = []
        for rel, info in sorted(meta.get("files", {}).items()):
            path = entry_dir / rel
            try:
                size = path.stat().st_size
            except OSError:
                issues.append(f"missing file {rel}")
                continue
            if size != info.get("bytes"):
                issues.append(
                    f"size mismatch {rel}: {size} != {info.get('bytes')}")
                continue
            want = info.get("sha256")
            if deep and want and _file_sha256(path) != want:
                issues.append(f"checksum mismatch {rel}")
        if (entry_dir / SHARD_INDEX_NAME).exists():
            try:
                layouts = read_shard_index(entry_dir)
                for kind in sorted(layouts):
                    layout = layouts[kind]
                    checksums = layout.checksums
                    for shard in range(layout.n_shards):
                        start, stop = layout.shard_extent(shard)
                        _verify_shard(
                            shard_path(entry_dir, kind, shard),
                            stop - start, layout.points,
                            checksum=(checksums[shard]
                                      if shard < len(checksums) else None),
                            deep=deep)
            except TraceError as exc:
                issues.append(str(exc))
        return artifact, issues


class StreamedEntryWriter:
    """A live staging directory for one streamed (sharded) cache entry.

    Created by :meth:`ArtifactCache.workload_writer`; shard files are
    written into :attr:`staging` while generation runs, and
    :meth:`commit` seals the entry (tables + ``meta.json`` last, then
    one atomic rename).  :meth:`abort` discards everything.
    """

    def __init__(self, cache: ArtifactCache, key: str, artifact: str,
                 scenario: Scenario, staging: Path) -> None:
        self.cache = cache
        self.key = key
        self.artifact = artifact
        self.scenario = scenario
        self.staging = staging
        self.final = cache._entry_dir(key)

    def commit(self, platform, tables: dict, shards: int) -> Path:
        """Seal the staged entry; returns the directory now holding it.

        If another process materialised the same key first, the staged
        copy yields to it when the winner is also sharded (same bytes);
        a monolithic winner keeps *this* run's staged store alive as an
        anonymous spill directory so the returned path always holds the
        shards this writer produced.

        Unlike the rebuildable :meth:`ArtifactCache.put_object` path,
        a commit that keeps failing *raises* after its retry budget
        (cleaning the staging dir first): the caller's dataset needs
        these shards, so there is nothing to degrade to.  The seal step
        (tables + meta + rename) is what retries — the multi-gigabyte
        shard payload is already on disk and is not rewritten.
        """

        def seal() -> Path:
            failpoint("cache.commit", self.artifact)
            with (self.staging / "platform.pkl").open("wb") as handle:
                pickle.dump(platform, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            with (self.staging / "tables.pkl").open("wb") as handle:
                pickle.dump(tables, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
            skip = frozenset(p.name for p in self.staging.iterdir()
                             if p.is_dir())
            meta = {
                "format": CACHE_FORMAT,
                "key": self.key,
                "artifact": self.artifact,
                "kind": "workload-shards",
                "shards": int(shards),
                "code_version": code_version(),
                "scenario": json.loads(self.scenario.cache_token()),
                "created_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                            time.gmtime()),
                # Shard payloads carry per-shard checksums in
                # shards.json; the manifest covers the rest.
                "files": _manifest(self.staging, skip_dirs=skip),
            }
            with (self.staging / "meta.json").open("w") as handle:
                json.dump(meta, handle, indent=2, sort_keys=True)
            self.final.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(self.staging, self.final)
            except OSError:
                if not (self.final / "meta.json").exists():
                    raise
                if (self.final / SHARD_INDEX_NAME).exists():
                    shutil.rmtree(self.staging, ignore_errors=True)
                else:
                    return self.staging
            return self.final

        def retried(attempt_no: int, delay_s: float,
                    exc: BaseException) -> None:
            self.cache._emit("cache_retry", artifact=self.artifact,
                             key=self.key, attempt=attempt_no,
                             delay_s=round(delay_s, 6),
                             error=f"{type(exc).__name__}: {exc}")

        try:
            landed = call_with_retry(seal, policy=COMMIT_RETRY,
                                     token=f"{self.artifact}|{self.key}",
                                     on_retry=retried)
        except BaseException:
            shutil.rmtree(self.staging, ignore_errors=True)
            raise
        self.cache._emit(
            "cache_store", artifact=self.artifact,
            kind="workload-shards", key=self.key, shards=int(shards),
            bytes=ArtifactCache._entry_size(landed))
        return landed

    def abort(self) -> None:
        """Discard the staged entry without publishing anything."""
        shutil.rmtree(self.staging, ignore_errors=True)
