"""Trace dataset schemas, container, and disk round-trip."""

from .azure_public import load_azure_public_dataset
from .dataset import TraceDataset, merge_days
from .io import load_dataset, save_dataset
from .schema import AppRecord, ServerRecord, SiteRecord, VMRecord

__all__ = [
    "AppRecord",
    "ServerRecord",
    "SiteRecord",
    "TraceDataset",
    "VMRecord",
    "load_azure_public_dataset",
    "load_dataset",
    "merge_days",
    "save_dataset",
]
