"""The in-memory trace dataset: VM tables plus usage time series.

A :class:`TraceDataset` is what every §4 analysis consumes.  CPU series
hold per-interval utilisation of the VM's allocated cores in [0, 1];
bandwidth series hold per-interval public egress in Mbps.  Series are
stored as float32 arrays keyed by VM id, all aligned to the same clock
(interval index 0 = trace start).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from ..errors import TraceError
from .schema import AppRecord, ServerRecord, SiteRecord, VMRecord

MINUTES_PER_DAY = 24 * 60


@dataclass
class TraceDataset:
    """One platform's trace: inventory tables plus aligned usage series."""

    platform_name: str
    trace_days: int
    cpu_interval_minutes: int
    bw_interval_minutes: int
    vms: dict[str, VMRecord] = field(default_factory=dict)
    apps: dict[str, AppRecord] = field(default_factory=dict)
    sites: dict[str, SiteRecord] = field(default_factory=dict)
    servers: dict[str, ServerRecord] = field(default_factory=dict)
    #: Series are ``Mapping[vm_id, row]``: plain dicts on the in-core
    #: path, lazy :class:`repro.shards.ShardedSeriesMap` views when the
    #: workload was streamed to disk (see :meth:`attach_series`).
    cpu_series: Mapping[str, np.ndarray] = field(default_factory=dict)
    bw_series: Mapping[str, np.ndarray] = field(default_factory=dict)
    #: Intra-site ("private") traffic, also reported by NEP's collector.
    bw_private_series: Mapping[str, np.ndarray] = field(default_factory=dict)
    #: Lazy reverse indexes (site/server/app -> vm ids); rebuilt after any
    #: add_vm.  The §4 analyses query these per site/server in loops, and
    #: a paper-scale fleet makes the naive full-table scan quadratic.
    _site_index: dict[str, list[str]] | None = field(
        default=None, repr=False, compare=False)
    _server_index: dict[str, list[str]] | None = field(
        default=None, repr=False, compare=False)
    _app_index: dict[str, list[str]] | None = field(
        default=None, repr=False, compare=False)

    # ---- structure -------------------------------------------------------

    @property
    def cpu_points(self) -> int:
        """Expected number of CPU readings per VM."""
        return self.trace_days * MINUTES_PER_DAY // self.cpu_interval_minutes

    @property
    def bw_points(self) -> int:
        """Expected number of bandwidth readings per VM."""
        return self.trace_days * MINUTES_PER_DAY // self.bw_interval_minutes

    @property
    def cpu_points_per_day(self) -> int:
        return MINUTES_PER_DAY // self.cpu_interval_minutes

    @property
    def bw_points_per_day(self) -> int:
        return MINUTES_PER_DAY // self.bw_interval_minutes

    def add_vm(self, record: VMRecord, cpu: np.ndarray,
               bw: np.ndarray, bw_private: np.ndarray | None = None) -> None:
        """Register a VM row together with its usage series.

        Raises:
            TraceError: on duplicate ids or series/clock length mismatch.
        """
        if record.vm_id in self.vms:
            raise TraceError(f"duplicate VM id {record.vm_id!r}")
        if cpu.shape != (self.cpu_points,):
            raise TraceError(
                f"VM {record.vm_id!r}: CPU series has {cpu.shape[0]} points, "
                f"expected {self.cpu_points}"
            )
        if bw.shape != (self.bw_points,):
            raise TraceError(
                f"VM {record.vm_id!r}: bandwidth series has {bw.shape[0]} "
                f"points, expected {self.bw_points}"
            )
        if np.any(cpu < 0) or np.any(cpu > 1.0 + 1e-6):
            raise TraceError(
                f"VM {record.vm_id!r}: CPU utilisation outside [0, 1]"
            )
        if np.any(bw < 0):
            raise TraceError(f"VM {record.vm_id!r}: negative bandwidth")
        self.vms[record.vm_id] = record
        self._site_index = self._server_index = self._app_index = None
        self.cpu_series[record.vm_id] = cpu.astype(np.float32)
        self.bw_series[record.vm_id] = bw.astype(np.float32)
        if bw_private is not None:
            if bw_private.shape != (self.bw_points,):
                raise TraceError(
                    f"VM {record.vm_id!r}: private bandwidth length mismatch"
                )
            self.bw_private_series[record.vm_id] = bw_private.astype(np.float32)

    def add_vm_record(self, record: VMRecord) -> None:
        """Register a VM row *without* series (the streaming path).

        The rendered rows travel through a
        :class:`~repro.workload.streaming.WorkloadSink` instead and are
        attached afterwards via :meth:`attach_series`; value/shape
        validation happens in the sink, in the same terms as
        :meth:`add_vm`.

        Raises:
            TraceError: on duplicate ids.
        """
        if record.vm_id in self.vms:
            raise TraceError(f"duplicate VM id {record.vm_id!r}")
        self.vms[record.vm_id] = record
        self._site_index = self._server_index = self._app_index = None

    def attach_series(self, cpu: Mapping[str, np.ndarray],
                      bw: Mapping[str, np.ndarray],
                      bw_private: Mapping[str, np.ndarray] | None = None,
                      ) -> None:
        """Attach complete series mappings (streamed or cache-loaded).

        Replaces the series wholesale; callers guarantee the mappings
        cover every registered VM (checked by :meth:`validate`).
        """
        self.cpu_series = cpu
        self.bw_series = bw
        self.bw_private_series = bw_private if bw_private is not None else {}

    # ---- lookups ----------------------------------------------------------

    def vm_ids(self) -> list[str]:
        return list(self.vms)

    def _index(self, attr: str) -> dict[str, list[str]]:
        """One lazy reverse index over the VM table (vm attr -> vm ids)."""
        slot = f"_{attr}_index"
        index = getattr(self, slot)
        if index is None:
            index = {}
            key = f"{attr}_id"
            for vm_id, vm in self.vms.items():
                index.setdefault(getattr(vm, key), []).append(vm_id)
            setattr(self, slot, index)
        return index

    def vms_of_app(self, app_id: str) -> list[VMRecord]:
        if app_id not in self.apps:
            raise TraceError(f"unknown app {app_id!r}")
        return [self.vms[vm_id]
                for vm_id in self._index("app").get(app_id, ())]

    def vms_on_server(self, server_id: str) -> list[VMRecord]:
        return [self.vms[vm_id]
                for vm_id in self._index("server").get(server_id, ())]

    def vms_on_site(self, site_id: str) -> list[VMRecord]:
        return [self.vms[vm_id]
                for vm_id in self._index("site").get(site_id, ())]

    def app_ids_with_vms(self) -> list[str]:
        present = self._index("app")
        return [app_id for app_id in self.apps if app_id in present]

    # ---- aggregations ------------------------------------------------------

    def mean_cpu(self, vm_id: str) -> float:
        return float(self.cpu_series[vm_id].mean())

    def p95_max_cpu(self, vm_id: str) -> float:
        """95th percentile of the CPU readings (the paper's "P95 Max").

        The trace reports the max utilisation within each interval; the
        95th percentile of those maxima is the paper's tail-load metric.
        """
        return float(np.percentile(self.cpu_series[vm_id], 95))

    def cpu_cv(self, vm_id: str) -> float:
        series = self.cpu_series[vm_id]
        mean = float(series.mean())
        if mean == 0.0:
            return 0.0
        return float(series.std() / mean)

    def server_cpu_usage(self, server_id: str) -> np.ndarray:
        """Requested-core-weighted CPU usage of a server's VMs (Fig 11)."""
        vms = self.vms_on_server(server_id)
        if not vms:
            return np.zeros(self.cpu_points, dtype=np.float32)
        total_cores = sum(vm.cpu_cores for vm in vms)
        usage = np.zeros(self.cpu_points, dtype=np.float64)
        for vm in vms:
            usage += self.cpu_series[vm.vm_id].astype(np.float64) * vm.cpu_cores
        return (usage / total_cores).astype(np.float32)

    def site_bandwidth(self, site_id: str) -> np.ndarray:
        """Summed public bandwidth of all VMs hosted at a site (Fig 11)."""
        usage = np.zeros(self.bw_points, dtype=np.float64)
        for vm in self.vms_on_site(site_id):
            usage += self.bw_series[vm.vm_id].astype(np.float64)
        return usage.astype(np.float32)

    def server_bandwidth(self, server_id: str) -> np.ndarray:
        usage = np.zeros(self.bw_points, dtype=np.float64)
        for vm in self.vms_on_server(server_id):
            usage += self.bw_series[vm.vm_id].astype(np.float64)
        return usage.astype(np.float32)

    def app_bandwidth(self, app_id: str) -> np.ndarray:
        usage = np.zeros(self.bw_points, dtype=np.float64)
        for vm in self.vms_of_app(app_id):
            usage += self.bw_series[vm.vm_id].astype(np.float64)
        return usage.astype(np.float32)

    def validate(self) -> None:
        """Consistency checks across the four tables.

        Raises:
            TraceError: on dangling references or missing series.
        """
        for vm in self.vms.values():
            if vm.app_id not in self.apps:
                raise TraceError(f"VM {vm.vm_id!r}: dangling app {vm.app_id!r}")
            if vm.site_id not in self.sites:
                raise TraceError(f"VM {vm.vm_id!r}: dangling site {vm.site_id!r}")
            if vm.server_id not in self.servers:
                raise TraceError(
                    f"VM {vm.vm_id!r}: dangling server {vm.server_id!r}"
                )
            if vm.vm_id not in self.cpu_series:
                raise TraceError(f"VM {vm.vm_id!r}: missing CPU series")
            if vm.vm_id not in self.bw_series:
                raise TraceError(f"VM {vm.vm_id!r}: missing bandwidth series")
        for server in self.servers.values():
            if server.site_id not in self.sites:
                raise TraceError(
                    f"server {server.server_id!r}: dangling site "
                    f"{server.site_id!r}"
                )


def merge_days(series: np.ndarray, points_per_day: int,
               reducer: str = "max") -> np.ndarray:
    """Collapse a series into one value per day (``max`` or ``mean``).

    Used by billing (daily peak bandwidth) and the Figure 12 weekly view.

    Raises:
        TraceError: if the series length is not a whole number of days.
    """
    if series.size % points_per_day:
        raise TraceError(
            f"series of {series.size} points is not a whole number of "
            f"{points_per_day}-point days"
        )
    daily = series.reshape(-1, points_per_day)
    if reducer == "max":
        return daily.max(axis=1)
    if reducer == "mean":
        return daily.mean(axis=1)
    raise TraceError(f"unknown reducer {reducer!r}")
