"""Disk round-trip for trace datasets (CSV tables + NPZ series).

Layout written by :func:`save_dataset` into one directory::

    meta.json        platform name, days, intervals
    vms.csv          the VM table
    apps.csv         the app table
    sites.csv        the site table
    servers.csv      the server capacity table
    cpu.npz          one array per VM id
    bw.npz           one array per VM id
    bw_private.npz   optional

This mirrors how the paper's dataset would plausibly ship (flat tables +
per-VM series) and makes the examples' outputs inspectable with any tool.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path

import numpy as np

from ..errors import TraceError
from .dataset import TraceDataset
from .schema import AppRecord, ServerRecord, SiteRecord, VMRecord

_META_NAME = "meta.json"


def _write_csv(path: Path, rows: list, record_type: type) -> None:
    fields = [f.name for f in dataclasses.fields(record_type)]
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for row in rows:
            writer.writerow(dataclasses.asdict(row))


def _read_csv(path: Path, record_type: type) -> list:
    converters = {
        f.name: (int if f.type == "int" else float if f.type == "float" else str)
        for f in dataclasses.fields(record_type)
    }
    rows = []
    with path.open(newline="") as handle:
        for raw in csv.DictReader(handle):
            kwargs = {name: converters[name](value) for name, value in raw.items()}
            rows.append(record_type(**kwargs))
    return rows


def save_dataset(dataset: TraceDataset, directory: str | Path) -> Path:
    """Write a dataset to ``directory`` (created if needed); returns it."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    meta = {
        "platform_name": dataset.platform_name,
        "trace_days": dataset.trace_days,
        "cpu_interval_minutes": dataset.cpu_interval_minutes,
        "bw_interval_minutes": dataset.bw_interval_minutes,
    }
    (root / _META_NAME).write_text(json.dumps(meta, indent=2))
    _write_csv(root / "vms.csv", list(dataset.vms.values()), VMRecord)
    _write_csv(root / "apps.csv", list(dataset.apps.values()), AppRecord)
    _write_csv(root / "sites.csv", list(dataset.sites.values()), SiteRecord)
    _write_csv(root / "servers.csv", list(dataset.servers.values()), ServerRecord)
    np.savez_compressed(root / "cpu.npz", **dataset.cpu_series)
    np.savez_compressed(root / "bw.npz", **dataset.bw_series)
    if dataset.bw_private_series:
        np.savez_compressed(root / "bw_private.npz", **dataset.bw_private_series)
    return root


def load_dataset(directory: str | Path) -> TraceDataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Raises:
        TraceError: if the directory is missing required files.
    """
    root = Path(directory)
    meta_path = root / _META_NAME
    if not meta_path.exists():
        raise TraceError(f"not a trace dataset directory: {root}")
    meta = json.loads(meta_path.read_text())
    dataset = TraceDataset(
        platform_name=meta["platform_name"],
        trace_days=int(meta["trace_days"]),
        cpu_interval_minutes=int(meta["cpu_interval_minutes"]),
        bw_interval_minutes=int(meta["bw_interval_minutes"]),
    )
    dataset.apps = {r.app_id: r for r in _read_csv(root / "apps.csv", AppRecord)}
    dataset.sites = {r.site_id: r for r in _read_csv(root / "sites.csv", SiteRecord)}
    dataset.servers = {
        r.server_id: r for r in _read_csv(root / "servers.csv", ServerRecord)
    }
    vms = _read_csv(root / "vms.csv", VMRecord)
    with np.load(root / "cpu.npz") as cpu_npz:
        cpu = {key: cpu_npz[key] for key in cpu_npz.files}
    with np.load(root / "bw.npz") as bw_npz:
        bw = {key: bw_npz[key] for key in bw_npz.files}
    private: dict[str, np.ndarray] = {}
    private_path = root / "bw_private.npz"
    if private_path.exists():
        with np.load(private_path) as priv_npz:
            private = {key: priv_npz[key] for key in priv_npz.files}
    for record in vms:
        dataset.add_vm(record, cpu[record.vm_id], bw[record.vm_id],
                       private.get(record.vm_id))
    dataset.validate()
    return dataset
