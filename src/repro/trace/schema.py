"""Record schemas for the workload trace, mirroring §2.1.2.

The NEP dataset contains four parts: (1) a VM table with placement,
customer, and system information; (2) the resource capacity of each VM and
server; (3) per-VM CPU usage readings; (4) per-VM bandwidth readings
(public and private).  The classes below are the canonical in-memory form
of those tables; :mod:`repro.trace.io` round-trips them through CSV/JSONL.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TraceError


@dataclass(frozen=True)
class VMRecord:
    """One row of the VM table (§2.1.2 items 1–2)."""

    vm_id: str
    app_id: str
    customer_id: str
    site_id: str
    server_id: str
    city: str
    province: str
    category: str
    image_id: str
    os_type: str
    cpu_cores: int
    memory_gb: int
    disk_gb: int
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0 or self.memory_gb <= 0:
            raise TraceError(
                f"VM {self.vm_id!r}: non-positive capacity "
                f"({self.cpu_cores} cores, {self.memory_gb} GB)"
            )
        if self.disk_gb < 0 or self.bandwidth_mbps < 0:
            raise TraceError(f"VM {self.vm_id!r}: negative disk or bandwidth")


@dataclass(frozen=True)
class ServerRecord:
    """Capacity row for one physical server."""

    server_id: str
    site_id: str
    cpu_cores: int
    memory_gb: int
    disk_gb: int

    def __post_init__(self) -> None:
        if self.cpu_cores <= 0 or self.memory_gb <= 0:
            raise TraceError(
                f"server {self.server_id!r}: non-positive capacity"
            )


@dataclass(frozen=True)
class SiteRecord:
    """One site: id, location labels, coordinates."""

    site_id: str
    name: str
    city: str
    province: str
    lat: float
    lon: float
    gateway_bandwidth_mbps: float


@dataclass(frozen=True)
class AppRecord:
    """One app: the (customer, image) grouping of VMs (§2 terminology)."""

    app_id: str
    customer_id: str
    category: str
    image_id: str
