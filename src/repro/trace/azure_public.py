"""Adapter for the *real* Azure Public Dataset (Cortez et al., SOSP'17;
2019 release) — the cloud-side trace the paper compares against.

Users who download the actual dataset
(https://github.com/Azure/AzurePublicDataset) can convert it into a
:class:`~repro.trace.dataset.TraceDataset` and run every §4 analysis of
this library on the genuine cloud workload instead of the synthetic one.

Supported files (V2 schema, headerless CSV):

* ``vmtable.csv`` — one row per VM:
  ``vmid, subscriptionid, deploymentid, vmcreated, vmdeleted, maxcpu,
  avgcpu, p95maxcpu, vmcategory, vmcorecountbucket, vmmemorybucket``
* ``vm_cpu_readings-*.csv`` — 5-minute readings:
  ``timestamp, vmid, mincpu, maxcpu, avgcpu``

The public dataset has no placement, bandwidth, or storage telemetry, so
those fields are filled with a single synthetic region and zero series —
exactly the information asymmetry the paper works around (§2.1.2 vs
Appendix B).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

import numpy as np

from ..errors import TraceError
from .dataset import TraceDataset
from .schema import AppRecord, ServerRecord, SiteRecord, VMRecord

#: vmcorecountbucket / vmmemorybucket values map ">24" and ">64" tails.
_BUCKET_TAIL = {">24": 30, ">64": 96}

AZURE_READING_INTERVAL_MINUTES = 5
_SYNTHETIC_SITE = "azure-region-0"
_SYNTHETIC_SERVER = "azure-region-0-m0000"


def _parse_bucket(value: str, field: str) -> int:
    value = value.strip()
    if value in _BUCKET_TAIL:
        return _BUCKET_TAIL[value]
    try:
        return max(1, int(float(value)))
    except ValueError:
        raise TraceError(f"unparseable {field} bucket {value!r}") from None


def read_vmtable(path: str | Path) -> list[dict]:
    """Parse ``vmtable.csv`` rows into dictionaries.

    Raises:
        TraceError: on missing file or malformed rows.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"vmtable not found: {path}")
    rows = []
    with path.open(newline="") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            if len(row) != 11:
                raise TraceError(
                    f"{path}:{line_no}: expected 11 columns, got {len(row)}"
                )
            try:
                rows.append({
                    "vmid": row[0],
                    "subscriptionid": row[1],
                    "deploymentid": row[2],
                    "created_s": int(row[3]),
                    "deleted_s": int(row[4]),
                    "maxcpu": float(row[5]),
                    "avgcpu": float(row[6]),
                    "p95maxcpu": float(row[7]),
                    "category": row[8].strip().lower(),
                    "cores": _parse_bucket(row[9], "core"),
                    "memory_gb": _parse_bucket(row[10], "memory"),
                })
            except ValueError as exc:
                raise TraceError(f"{path}:{line_no}: {exc}") from exc
    if not rows:
        raise TraceError(f"{path}: vmtable is empty")
    return rows


def read_cpu_readings(paths: Iterable[str | Path]) -> dict[str, list[tuple[int, float]]]:
    """Parse one or more ``vm_cpu_readings`` files.

    Returns vmid -> list of (timestamp seconds, avg cpu percent).

    Everything is held in memory: the *full* 2019 dataset's readings run
    to hundreds of GB, so pass a subset of the 195 files (each covers the
    whole VM population for a time slice) or pre-filter to the VMs of
    interest; a handful of files is plenty for the paper's analyses.

    Raises:
        TraceError: on malformed rows.
    """
    readings: dict[str, list[tuple[int, float]]] = {}
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise TraceError(f"readings file not found: {path}")
        with path.open(newline="") as handle:
            for line_no, row in enumerate(csv.reader(handle), start=1):
                if not row:
                    continue
                if len(row) != 5:
                    raise TraceError(
                        f"{path}:{line_no}: expected 5 columns, "
                        f"got {len(row)}"
                    )
                try:
                    timestamp, vmid = int(row[0]), row[1]
                    avg = float(row[4])
                except ValueError as exc:
                    raise TraceError(
                        f"{path}:{line_no}: {exc}") from exc
                readings.setdefault(vmid, []).append((timestamp, avg))
    return readings


def to_trace_dataset(vmtable: list[dict],
                     readings: dict[str, list[tuple[int, float]]],
                     trace_days: int,
                     platform_name: str = "AzurePublic") -> TraceDataset:
    """Assemble a :class:`TraceDataset` from parsed Azure files.

    VMs without enough readings to cover ``trace_days`` are padded with
    their mean utilisation (the dataset's VMs churn mid-trace); readings
    beyond the span are dropped.  CPU percentages convert to [0, 1].

    Raises:
        TraceError: if no VM has any readings.
    """
    dataset = TraceDataset(
        platform_name=platform_name,
        trace_days=trace_days,
        cpu_interval_minutes=AZURE_READING_INTERVAL_MINUTES,
        bw_interval_minutes=AZURE_READING_INTERVAL_MINUTES,
    )
    dataset.sites[_SYNTHETIC_SITE] = SiteRecord(
        site_id=_SYNTHETIC_SITE, name="azure-region", city="unknown",
        province="unknown", lat=0.0, lon=0.0,
        gateway_bandwidth_mbps=0.0,
    )
    dataset.servers[_SYNTHETIC_SERVER] = ServerRecord(
        server_id=_SYNTHETIC_SERVER, site_id=_SYNTHETIC_SITE,
        cpu_cores=10**6, memory_gb=10**6, disk_gb=10**6,
    )

    points = dataset.cpu_points
    interval_s = AZURE_READING_INTERVAL_MINUTES * 60
    added = 0
    for row in vmtable:
        vm_readings = readings.get(row["vmid"])
        if not vm_readings:
            continue
        app_id = row["deploymentid"]
        if app_id not in dataset.apps:
            dataset.apps[app_id] = AppRecord(
                app_id=app_id, customer_id=row["subscriptionid"],
                category=row["category"], image_id=app_id,
            )
        series = np.full(points, np.nan, dtype=np.float64)
        for timestamp, avg in vm_readings:
            index = timestamp // interval_s
            if 0 <= index < points:
                series[index] = avg / 100.0
        if np.isnan(series).all():
            continue
        fill = float(np.nanmean(series))
        series = np.where(np.isnan(series), fill, series)
        record = VMRecord(
            vm_id=row["vmid"], app_id=app_id,
            customer_id=row["subscriptionid"],
            site_id=_SYNTHETIC_SITE, server_id=_SYNTHETIC_SERVER,
            city="unknown", province="unknown",
            category=row["category"], image_id=app_id, os_type="unknown",
            cpu_cores=row["cores"], memory_gb=row["memory_gb"],
            disk_gb=0, bandwidth_mbps=0.0,
        )
        dataset.add_vm(record, np.clip(series, 0.0, 1.0),
                       np.zeros(dataset.bw_points))
        added += 1
    if not added:
        raise TraceError("no VM in the vmtable has CPU readings")
    return dataset


def load_azure_public_dataset(directory: str | Path,
                              trace_days: int = 30) -> TraceDataset:
    """One-call loader: directory with vmtable.csv + vm_cpu_readings-*.csv.

    Raises:
        TraceError: if the directory lacks the expected files.
    """
    root = Path(directory)
    vmtable_path = root / "vmtable.csv"
    reading_paths = sorted(root.glob("vm_cpu_readings*.csv"))
    if not reading_paths:
        raise TraceError(f"no vm_cpu_readings*.csv under {root}")
    vmtable = read_vmtable(vmtable_path)
    readings = read_cpu_readings(reading_paths)
    return to_trace_dataset(vmtable, readings, trace_days=trace_days)
