"""Bounded, seeded retry with exponential backoff and jitter.

Every supervised boundary — cache commits, shard flushes, pool jobs,
farm tasks — shares one policy shape: try up to ``max_attempts`` times,
sleeping ``backoff_s * factor**(attempt-1)`` between attempts with a
deterministic jitter drawn from a seeded stream.  Jitter is derived
from ``sha256(seed | token | attempt)`` rather than a live RNG, so a
given (policy, token) pair always produces the same delay sequence —
the determinism contract extends to *how long* a chaos run waits, and
no global RNG state is consumed (retries must never shift simulation
draws).

:func:`call_with_retry` is the shared loop; the pool supervisor uses
:meth:`RetryPolicy.delay` directly because its retries are scheduled
asynchronously (a waiting parent must keep consuming other results
instead of sleeping).
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError, InjectedFault

#: Exception classes retried by default: injected chaos plus the
#: transient-I/O shape (``OSError`` covers ENOSPC, EINTR, flaky NFS).
DEFAULT_TRANSIENT = (InjectedFault, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently one boundary retries.

    ``max_attempts`` counts the first try: 3 means one call plus two
    retries.  ``jitter`` is the maximum *fractional* increase of a
    delay (0.25 = up to +25%).
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0 or self.factor < 1 or self.jitter < 0:
            raise ConfigurationError(
                f"invalid retry policy: backoff_s={self.backoff_s} "
                f"factor={self.factor} jitter={self.jitter}")

    def delay(self, token: str, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based).

        Deterministic per (seed, token, attempt): exponential base plus
        seeded jitter, so retry schedules are reproducible and two jobs
        retrying concurrently (different tokens) de-synchronise.
        """
        base = self.backoff_s * self.factor ** (attempt - 1)
        digest = hashlib.sha256(
            f"retry|{self.seed}|{token}|{attempt}".encode()).digest()
        uniform = struct.unpack(">Q", digest[:8])[0] / 2.0 ** 64
        return base * (1.0 + self.jitter * uniform)


def call_with_retry(fn: Callable[[], object], *, policy: RetryPolicy,
                    token: str,
                    transient: tuple[type[BaseException], ...]
                    = DEFAULT_TRANSIENT,
                    on_retry: Callable[[int, float, BaseException], None]
                    | None = None,
                    sleep: Callable[[float], None] = time.sleep) -> object:
    """Call ``fn`` until it succeeds or the retry budget is exhausted.

    Only ``transient`` exception types are retried; anything else
    propagates immediately (a programming error must not be papered
    over by retries).  ``on_retry(attempt, delay_s, exc)`` is invoked
    before each backoff sleep — the journal hook.  The final failure
    re-raises the last transient exception unchanged.
    """
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except transient as exc:
            if attempt >= policy.max_attempts:
                raise
            delay = policy.delay(token, attempt)
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
