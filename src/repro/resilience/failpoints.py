"""Deterministic failpoints: named fault-injection sites for chaos runs.

The paper's core finding is that edge infrastructure fails far more
often than cloud — and a harness that reproduces it must itself survive
torn cache writes, dying workers, and hung jobs.  This module provides
the *injection* half of that story: a registry of named **sites** wired
into the I/O and pool boundaries (cache commit/read, shard write/read,
shared-memory slot acquisition, series rendering, sweep cells, worker
kills).  Each instrumented code path calls :func:`failpoint` with its
site name; when a configured rule fires, the call raises
:class:`~repro.errors.InjectedFault` (or, for supervisor-side sites,
:func:`fire` returns ``True`` and the supervisor kills a worker).

Spec grammar
------------

A failpoint spec is a ``;``-separated list of site rules::

    site ':' param (',' param)*

with parameters

* ``nth=N`` — fire on the Nth hit of the site (1-based, per process);
* ``p=F`` — else fire each hit with probability ``F``, drawn from a
  dedicated deterministic stream (seeded, so a given spec always fires
  on the same hit sequence);
* ``times=M`` — stop firing after M firings (default: 1 for ``nth``
  rules, unlimited for ``p`` rules);
* ``seed=S`` — the stream seed for ``p`` rules (default 0).

Example: ``cache.commit:p=0.05,seed=11;pool.kill_worker:nth=2,times=1``
fails ~5% of cache commit attempts and kills the worker holding the
second dispatched series job, once.

Activation
----------

The active registry comes from the ``REPRO_FAILPOINTS`` environment
variable (re-read whenever its value changes, so tests and forked
workers see a consistent view) or an explicit :func:`install` — the
CLI's ``--chaos PROFILE`` installs one of :data:`CHAOS_PROFILES` and
exports the env var so forked sweep cells inherit it.  Hit counters are
per-process; forked children start from the parent's counts at fork
time, which keeps a chaos run deterministic for a fixed topology.
"""

from __future__ import annotations

import hashlib
import os
import struct
from dataclasses import dataclass

from ..errors import ConfigurationError, InjectedFault

#: Environment variable holding the active failpoint spec.
FAILPOINTS_ENV = "REPRO_FAILPOINTS"

#: Every instrumented site.  Specs naming anything else are rejected —
#: a typo'd site would otherwise silently never fire.
SITES = frozenset({
    "cache.commit",       # ArtifactCache entry write (staging -> rename)
    "cache.read",         # ArtifactCache entry load
    "shard.write",        # ShardWriter flush of one shard file
    "shard.read",         # shard header/size verification at load
    "shm.acquire",        # shared-memory slot acquisition in a worker
    "series.render",      # one series job render (worker or serial)
    "sweep.cell",         # one sweep cell execution
    "pool.kill_worker",   # supervisor-side: SIGKILL the dispatched worker
    "farm.kill_worker",   # supervisor-side: SIGKILL a farm worker
    "qoe.chunk",          # one vectorized session-chunk simulation
    "live.tick",          # one live-engine tick step (probed pre-mutation)
})

#: Named chaos profiles behind ``--chaos PROFILE``.  ``ci`` is the CI
#: chaos gate: ~5% cache-write failures plus one injected worker death,
#: recoverable well inside the default retry budgets.
CHAOS_PROFILES = {
    "ci": ("cache.commit:p=0.05,seed=11;pool.kill_worker:nth=2,times=1;"
           "qoe.chunk:p=0.05,seed=14;live.tick:p=0.02,seed=15"),
    "cache": "cache.commit:p=0.2,seed=7;cache.read:p=0.05,seed=8",
    "pool": ("series.render:p=0.05,seed=9;shm.acquire:p=0.02,seed=10;"
             "pool.kill_worker:nth=3,times=1"),
    "harsh": ("cache.commit:p=0.1,seed=11;shard.write:p=0.02,seed=12;"
              "series.render:p=0.05,seed=13;qoe.chunk:p=0.05,seed=14;"
              "pool.kill_worker:nth=2,times=2;live.tick:p=0.05,seed=15"),
}


@dataclass(frozen=True)
class FailpointRule:
    """One parsed site rule: when (and how often) the site fires."""

    site: str
    nth: int | None = None
    p: float | None = None
    times: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown failpoint site {self.site!r}; expected one of "
                f"{', '.join(sorted(SITES))}")
        if (self.nth is None) == (self.p is None):
            raise ConfigurationError(
                f"failpoint {self.site}: exactly one of nth=/p= required")
        if self.nth is not None and self.nth < 1:
            raise ConfigurationError(
                f"failpoint {self.site}: nth must be >= 1, got {self.nth}")
        if self.p is not None and not 0.0 < self.p <= 1.0:
            raise ConfigurationError(
                f"failpoint {self.site}: p must be in (0, 1], got {self.p}")
        if self.times is not None and self.times < 1:
            raise ConfigurationError(
                f"failpoint {self.site}: times must be >= 1, "
                f"got {self.times}")

    @property
    def max_fires(self) -> int | None:
        """Firing budget: explicit ``times``, else 1 for nth, unlimited."""
        if self.times is not None:
            return self.times
        return 1 if self.nth is not None else None


def _hit_uniform(seed: int, site: str, hit: int) -> float:
    """A deterministic uniform in [0, 1) for one (seed, site, hit)."""
    digest = hashlib.sha256(
        f"failpoint|{seed}|{site}|{hit}".encode()).digest()
    return struct.unpack(">Q", digest[:8])[0] / 2.0 ** 64


class FailpointRegistry:
    """Hit counting and firing decisions for a set of site rules."""

    def __init__(self, rules: dict[str, FailpointRule] | None = None
                 ) -> None:
        self.rules = dict(rules or {})
        self._hits: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """Whether any rule is configured (fast-path check)."""
        return bool(self.rules)

    def hits(self, site: str) -> int:
        """How many times ``site`` has been evaluated in this process."""
        return self._hits.get(site, 0)

    def fired(self, site: str) -> int:
        """How many times ``site`` has fired in this process."""
        return self._fired.get(site, 0)

    def fire(self, site: str) -> bool:
        """Record one hit of ``site``; ``True`` when the rule fires.

        The non-raising form used by supervisor-side sites
        (``pool.kill_worker``); data-path sites go through
        :meth:`trip`, which raises instead.
        """
        if site not in SITES:
            raise ConfigurationError(f"unknown failpoint site {site!r}")
        rule = self.rules.get(site)
        if rule is None:
            return False
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        fired = self._fired.get(site, 0)
        budget = rule.max_fires
        if budget is not None and fired >= budget:
            return False
        if rule.nth is not None:
            fires = hit >= rule.nth
        else:
            fires = _hit_uniform(rule.seed, site, hit) < rule.p
        if fires:
            self._fired[site] = fired + 1
        return fires

    def trip(self, site: str, detail: str = "") -> None:
        """Raise :class:`InjectedFault` when ``site`` fires, else no-op."""
        if self.fire(site):
            suffix = f" ({detail})" if detail else ""
            raise InjectedFault(
                f"failpoint {site} fired on hit {self._hits[site]}"
                f"{suffix}")


def parse_failpoints(spec: str) -> FailpointRegistry:
    """Parse a spec string into a registry.

    Raises:
        ConfigurationError: on grammar errors, unknown sites, or
            out-of-range parameters.
    """
    rules: dict[str, FailpointRule] = {}
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        site, sep, params = chunk.partition(":")
        site = site.strip()
        if not sep or not params.strip():
            raise ConfigurationError(
                f"failpoint rule {chunk!r} needs 'site:param,...'")
        if site in rules:
            raise ConfigurationError(f"duplicate failpoint site {site!r}")
        fields: dict[str, object] = {}
        for param in params.split(","):
            name, sep, value = param.partition("=")
            name, value = name.strip(), value.strip()
            if not sep or not value:
                raise ConfigurationError(
                    f"failpoint {site}: malformed parameter {param!r}")
            try:
                if name in ("nth", "times", "seed"):
                    fields[name] = int(value)
                elif name == "p":
                    fields[name] = float(value)
                else:
                    raise ConfigurationError(
                        f"failpoint {site}: unknown parameter {name!r} "
                        f"(expected nth/p/times/seed)")
            except ValueError:
                raise ConfigurationError(
                    f"failpoint {site}: bad value for {name}: {value!r}"
                ) from None
        rules[site] = FailpointRule(site=site, **fields)
    return FailpointRegistry(rules)


def chaos_spec(profile: str) -> str:
    """The failpoint spec behind a named chaos profile.

    Raises:
        ConfigurationError: on an unknown profile name.
    """
    try:
        return CHAOS_PROFILES[profile]
    except KeyError:
        raise ConfigurationError(
            f"unknown chaos profile {profile!r}, expected one of "
            f"{', '.join(sorted(CHAOS_PROFILES))}") from None


#: The process-wide active registry plus the spec string it was parsed
#: from, so a changed ``REPRO_FAILPOINTS`` value is picked up lazily.
_active: FailpointRegistry = FailpointRegistry()
_active_spec: str = ""


def active() -> FailpointRegistry:
    """The process-wide registry, synced with ``REPRO_FAILPOINTS``.

    Re-parses (and resets hit counters) only when the environment value
    differs from the one the current registry was built from, so
    repeated calls on hot paths cost one string compare.
    """
    global _active, _active_spec
    spec = os.environ.get(FAILPOINTS_ENV, "")
    if spec != _active_spec:
        _active = parse_failpoints(spec)
        _active_spec = spec
    return _active


def install(spec: str, *, export: bool = True) -> FailpointRegistry:
    """Install a spec as the active registry (and export the env var).

    ``export`` keeps ``REPRO_FAILPOINTS`` in sync so forked children —
    sweep cells, pool workers — inherit the same configuration.
    """
    global _active, _active_spec
    registry = parse_failpoints(spec)
    _active, _active_spec = registry, spec
    if export:
        if spec:
            os.environ[FAILPOINTS_ENV] = spec
        else:
            os.environ.pop(FAILPOINTS_ENV, None)
    return registry


def reset() -> None:
    """Clear the active registry and the exported env var (tests)."""
    install("", export=True)


def failpoint(site: str, detail: str = "") -> None:
    """Evaluate a data-path site: raises :class:`InjectedFault` on fire.

    The no-rules fast path is one attribute check, so instrumented hot
    paths (per-shard flushes, per-job renders) stay effectively free
    when chaos is off.
    """
    registry = active()
    if registry.enabled:
        registry.trip(site, detail)


def fire(site: str) -> bool:
    """Evaluate a supervisor-side site; ``True`` when it fires."""
    registry = active()
    return registry.enabled and registry.fire(site)
