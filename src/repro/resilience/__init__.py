"""Supervised execution: failpoints, retries, and watchdog policy.

The paper measures platforms that fail constantly; this package makes
the *runner* survive the same weather.  It has three pieces:

* :mod:`repro.resilience.failpoints` — a deterministic fault-injection
  registry (``REPRO_FAILPOINTS`` / ``--chaos PROFILE``) wired into the
  I/O and pool boundaries, so chaos runs exercise every recovery path
  on demand and reproducibly;
* :mod:`repro.resilience.retry` — the shared bounded-retry loop with
  seeded exponential backoff and jitter;
* :mod:`repro.resilience.supervise` — the watchdog configuration
  (per-job timeout, heartbeat staleness, retry budget) consumed by the
  supervised pool and task farm in :mod:`repro.parallel`.

The design contract, enforced by the chaos CI gate: recovery changes
*when* work happens, never *what* it produces — a run that survives
injected cache-write failures and a worker kill canonicalises to the
bit-identical journal and outputs of a clean run (retry/restart events
are volatile, see :data:`repro.obs.VOLATILE_EVENT_TYPES`).

See ``docs/resilience.md`` for the spec grammar, the retry/quarantine
policy, and the per-subsystem failure-modes table.
"""

from .failpoints import (
    CHAOS_PROFILES,
    FAILPOINTS_ENV,
    SITES,
    FailpointRegistry,
    FailpointRule,
    active,
    chaos_spec,
    failpoint,
    fire,
    install,
    parse_failpoints,
    reset,
)
from .retry import DEFAULT_TRANSIENT, RetryPolicy, call_with_retry
from .supervise import SupervisionConfig

__all__ = [
    "CHAOS_PROFILES",
    "DEFAULT_TRANSIENT",
    "FAILPOINTS_ENV",
    "FailpointRegistry",
    "FailpointRule",
    "RetryPolicy",
    "SITES",
    "SupervisionConfig",
    "active",
    "call_with_retry",
    "chaos_spec",
    "failpoint",
    "fire",
    "install",
    "parse_failpoints",
    "reset",
]
