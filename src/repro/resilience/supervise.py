"""Supervision knobs shared by the series pool and the task farm.

A :class:`SupervisionConfig` bundles the watchdog timeouts with the
job-level :class:`~repro.resilience.retry.RetryPolicy`.  The defaults
are deliberately generous — a paper-scale series job renders in
seconds, a city-scale sweep cell in minutes, so the stock timeouts only
ever catch genuinely wedged workers — and every knob has an
environment override so chaos probes and constrained CI hosts can
tighten them without threading parameters through the study stack.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .retry import RetryPolicy

#: Environment overrides (floats, seconds / int, attempts).
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT_S"
HEARTBEAT_TIMEOUT_ENV = "REPRO_HEARTBEAT_TIMEOUT_S"
MAX_ATTEMPTS_ENV = "REPRO_JOB_ATTEMPTS"

#: Stock limits: a series job at city scale renders well under this.
DEFAULT_JOB_TIMEOUT_S = 900.0
DEFAULT_HEARTBEAT_TIMEOUT_S = 60.0


@dataclass(frozen=True)
class SupervisionConfig:
    """Watchdog limits plus the per-job retry policy."""

    #: Wall-clock budget for one job attempt; longer means the worker
    #: is killed and the job retried.  ``None`` disables the check.
    job_timeout_s: float | None = DEFAULT_JOB_TIMEOUT_S
    #: Maximum heartbeat staleness before a worker counts as wedged.
    #: ``None`` disables the check.
    heartbeat_timeout_s: float | None = DEFAULT_HEARTBEAT_TIMEOUT_S
    #: Per-job retry budget (attempt 1 = first dispatch).
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        for name in ("job_timeout_s", "heartbeat_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive or None, got {value}")

    @classmethod
    def from_env(cls) -> "SupervisionConfig":
        """The stock config with any environment overrides applied."""
        kwargs: dict[str, object] = {}
        job_timeout = os.environ.get(JOB_TIMEOUT_ENV)
        if job_timeout:
            kwargs["job_timeout_s"] = _positive_or_none(
                JOB_TIMEOUT_ENV, job_timeout)
        heartbeat = os.environ.get(HEARTBEAT_TIMEOUT_ENV)
        if heartbeat:
            kwargs["heartbeat_timeout_s"] = _positive_or_none(
                HEARTBEAT_TIMEOUT_ENV, heartbeat)
        attempts = os.environ.get(MAX_ATTEMPTS_ENV)
        if attempts:
            try:
                kwargs["retry"] = RetryPolicy(max_attempts=int(attempts))
            except ValueError:
                raise ConfigurationError(
                    f"{MAX_ATTEMPTS_ENV} must be an integer, "
                    f"got {attempts!r}") from None
        return cls(**kwargs)


def _positive_or_none(name: str, raw: str) -> float | None:
    """Parse an env override: a positive float, or 0/'off' to disable."""
    if raw.strip().lower() in ("off", "none"):
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number (seconds) or 'off', "
            f"got {raw!r}") from None
    if value == 0:
        return None
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value
