"""Virtual-cloud baselines: re-homing NEP usage onto cloud regions (§4.5).

The paper's "virtual baselines" simulate NEP's edge apps deployed on a
cloud platform "by clustering and merging the VMs' usage (both hardware
and bandwidth) of NEP into the site distribution of cloud platforms based
on geographical distances".  :func:`cluster_usage_to_cloud` does exactly
that: every NEP site's share of an app's traffic moves to the nearest
cloud region, and the per-region series are summed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BillingError
from ..geo.coords import GeoPoint
from .usage import AppUsage


@dataclass(frozen=True)
class CloudRegion:
    """One region of a virtual cloud baseline."""

    region_id: str
    city: str
    location: GeoPoint


def nearest_region(location: GeoPoint,
                   regions: list[CloudRegion]) -> CloudRegion:
    """The cloud region geographically nearest to ``location``.

    Raises:
        BillingError: if the region list is empty.
    """
    if not regions:
        raise BillingError("virtual cloud has no regions")
    return min(regions, key=lambda r: r.location.distance_km(location))


def cluster_usage_to_cloud(usage: AppUsage,
                           site_locations: dict[str, GeoPoint],
                           regions: list[CloudRegion]) -> AppUsage:
    """Re-home an app's NEP usage onto the cloud's region distribution.

    Hardware subscriptions carry over unchanged (the virtual baseline
    subscribes the same VM shapes); bandwidth series merge per nearest
    region.

    Raises:
        BillingError: if a site in the usage has no known location.
    """
    clustered = AppUsage(
        app_id=usage.app_id,
        trace_days=usage.trace_days,
        interval_minutes=usage.interval_minutes,
        hardware=list(usage.hardware),
    )
    for location_id, series in usage.location_series.items():
        if location_id not in site_locations:
            raise BillingError(
                f"app {usage.app_id}: unknown site {location_id!r} "
                f"in usage bundle"
            )
        region = nearest_region(site_locations[location_id], regions)
        clustered.add_location_series(region.region_id, region.city, series)
    return clustered
