"""NEP's billing engine (§4.5 and Appendix D).

Hardware: flat per-unit monthly rates (65/CPU, 20/GB, 0.35/GB SSD).

Network: same-site traffic is combined and charged **by bandwidth** at a
city/ISP-dependent unit price (15-50 RMB/Mbps/month).  The billed
bandwidth is the *95th percentile of the daily peak* over the month —
NEP records each day's peak usage and bills the 4th-highest of ~30.
This coarse model is what makes NEP cheap for steady video traffic but
unfriendly to apps with one sharp daily burst (the online-education case
the paper highlights).
"""

from __future__ import annotations

import numpy as np

from ..errors import BillingError
from .models import (
    BillingBreakdown,
    NEP_BANDWIDTH_UNIT_RANGE,
    NEP_HARDWARE,
    series_to_daily_peaks,
)
from .usage import AppUsage


class CityPriceBook:
    """Deterministic per-city NEP bandwidth unit prices.

    Real NEP prices vary by city and ISP (guangzhou-telecom 50 vs
    chengdu-cmcc 15).  The book assigns each city a stable draw from the
    published range using a seeded stream, so every billing run of one
    scenario sees the same prices.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._prices: dict[str, float] = {}

    def unit_price(self, city: str) -> float:
        """RMB per Mbps per month for ``city``."""
        if not city:
            raise BillingError("city name must be non-empty")
        if city not in self._prices:
            low, high = NEP_BANDWIDTH_UNIT_RANGE
            # Skew toward the cheap end: most NEP sites are in second-tier
            # cities where edge bandwidth is cheapest.
            draw = low + (high - low) * float(self._rng.beta(1.6, 3.0))
            self._prices[city] = draw
        return self._prices[city]


class NepBilling:
    """Bills one app's monthly cost on NEP."""

    provider = "NEP"

    def __init__(self, price_book: CityPriceBook) -> None:
        self._prices = price_book

    def hardware_cost(self, usage: AppUsage) -> float:
        return sum(
            NEP_HARDWARE.monthly_cost(hw.cpu_cores, hw.memory_gb, hw.disk_gb)
            for hw in usage.hardware
        )

    def network_cost(self, usage: AppUsage) -> float:
        """Sum over sites of p95(daily peak) x city unit price."""
        total = 0.0
        for location_id, series in usage.location_series.items():
            daily_peaks = series_to_daily_peaks(series, usage.points_per_day)
            billed_mbps = float(np.percentile(daily_peaks, 95))
            city = usage.location_city[location_id]
            total += billed_mbps * self._prices.unit_price(city)
        return total

    def bill(self, usage: AppUsage) -> BillingBreakdown:
        """The app's full monthly bill on NEP."""
        return BillingBreakdown(
            provider=self.provider,
            network_model="on-demand-by-bandwidth (daily-peak p95)",
            hardware_rmb=self.hardware_cost(usage),
            network_rmb=self.network_cost(usage),
        )
