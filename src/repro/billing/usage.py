"""App-level usage bundles fed into the billing engines.

Billing needs, per app: the hardware subscribed by each VM and the
bandwidth series aggregated per site (NEP combines same-site traffic on
one bill; the virtual-cloud baselines aggregate per cloud region).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import BillingError

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class HardwareSubscription:
    """One VM's billable hardware."""

    cpu_cores: int
    memory_gb: int
    disk_gb: int


@dataclass
class AppUsage:
    """One app's billable usage over the trace."""

    app_id: str
    trace_days: int
    interval_minutes: int
    hardware: list[HardwareSubscription] = field(default_factory=list)
    #: Public bandwidth (Mbps) aggregated per location id.
    location_series: dict[str, np.ndarray] = field(default_factory=dict)
    #: Location id -> city name, for city-dependent unit prices.
    location_city: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trace_days <= 0 or self.interval_minutes <= 0:
            raise BillingError("trace_days and interval must be positive")
        if MINUTES_PER_DAY % self.interval_minutes:
            raise BillingError(
                f"interval {self.interval_minutes} does not divide a day"
            )

    @property
    def points_per_day(self) -> int:
        return MINUTES_PER_DAY // self.interval_minutes

    @property
    def points_per_hour(self) -> int:
        return max(1, 60 // self.interval_minutes)

    def add_location_series(self, location_id: str, city: str,
                            series: np.ndarray) -> None:
        """Accumulate a VM's bandwidth series onto its location's bill."""
        expected = self.trace_days * self.points_per_day
        if series.size != expected:
            raise BillingError(
                f"app {self.app_id}: series of {series.size} points, "
                f"expected {expected}"
            )
        if location_id in self.location_series:
            self.location_series[location_id] = (
                self.location_series[location_id] + series.astype(np.float64)
            )
        else:
            self.location_series[location_id] = series.astype(np.float64)
            self.location_city[location_id] = city

    def total_series(self) -> np.ndarray:
        """The app's platform-wide bandwidth series."""
        total = np.zeros(self.trace_days * self.points_per_day)
        for series in self.location_series.values():
            total += series
        return total

    def total_traffic_gb(self) -> float:
        """Total public traffic over the trace, in GB."""
        megabits = float(self.total_series().sum()) * self.interval_minutes * 60
        return megabits / 8.0 / 1000.0
