"""Cloud billing engines: AliCloud (vCloud-1) and Huawei (vCloud-2).

Each supports the three network billing models of Table 5:

* ``on-demand-by-bandwidth`` — per hour, the hour's peak bandwidth is
  charged at tiered hourly rates (the cheapest option for most apps);
* ``on-demand-by-quantity`` — flat 0.8 RMB per GB moved;
* ``pre-reserved`` — a fixed monthly price for bandwidth reserved at the
  month's peak (tiered 23/80 per Mbps).

Hardware uses the per-unit fits documented in :mod:`repro.billing.models`.
Costs observed over a shorter trace are normalised to a 30-day month.
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import BillingError
from .models import (
    ALICLOUD_HARDWARE,
    ALICLOUD_ON_DEMAND_HOURLY,
    BillingBreakdown,
    CLOUD_PER_GB,
    CLOUD_PRERESERVED_MONTHLY,
    HUAWEI_HARDWARE,
    HUAWEI_ON_DEMAND_HOURLY,
    HardwareRates,
    TieredRate,
    series_to_hourly_peaks,
)
from .usage import AppUsage

DAYS_PER_MONTH = 30.0
HOURS_PER_MONTH = 24.0 * DAYS_PER_MONTH


class NetworkModel(enum.Enum):
    """The three cloud network billing models of Table 5."""

    ON_DEMAND_BANDWIDTH = "on-demand-by-bandwidth"
    ON_DEMAND_QUANTITY = "on-demand-by-quantity"
    PRE_RESERVED = "pre-reserved"


class CloudBilling:
    """Bills one app's monthly cost on a cloud provider."""

    def __init__(self, provider: str, hardware: HardwareRates,
                 hourly_rate: TieredRate,
                 prereserved_rate: TieredRate = CLOUD_PRERESERVED_MONTHLY,
                 per_gb: float = CLOUD_PER_GB) -> None:
        self.provider = provider
        self._hardware = hardware
        self._hourly = hourly_rate
        self._prereserved = prereserved_rate
        self._per_gb = per_gb

    def hardware_cost(self, usage: AppUsage) -> float:
        return sum(
            self._hardware.monthly_cost(hw.cpu_cores, hw.memory_gb,
                                        hw.disk_gb)
            for hw in usage.hardware
        )

    # ---- the three network models -----------------------------------------

    def _on_demand_bandwidth(self, usage: AppUsage) -> float:
        month_scale = HOURS_PER_MONTH / (usage.trace_days * 24.0)
        total = 0.0
        for series in usage.location_series.values():
            hourly = series_to_hourly_peaks(series, usage.points_per_hour)
            total += sum(self._hourly.cost(float(p)) for p in hourly)
        return total * month_scale

    def _on_demand_quantity(self, usage: AppUsage) -> float:
        month_scale = DAYS_PER_MONTH / usage.trace_days
        return usage.total_traffic_gb() * self._per_gb * month_scale

    def _pre_reserved(self, usage: AppUsage) -> float:
        total = 0.0
        for series in usage.location_series.values():
            reserved_mbps = float(series.max())
            total += self._prereserved.cost(reserved_mbps)
        return total

    def network_cost(self, usage: AppUsage, model: NetworkModel) -> float:
        if model is NetworkModel.ON_DEMAND_BANDWIDTH:
            return self._on_demand_bandwidth(usage)
        if model is NetworkModel.ON_DEMAND_QUANTITY:
            return self._on_demand_quantity(usage)
        if model is NetworkModel.PRE_RESERVED:
            return self._pre_reserved(usage)
        raise BillingError(f"unknown network model {model!r}")

    def bill(self, usage: AppUsage, model: NetworkModel) -> BillingBreakdown:
        """The app's full monthly bill under one network model."""
        return BillingBreakdown(
            provider=self.provider,
            network_model=model.value,
            hardware_rmb=self.hardware_cost(usage),
            network_rmb=self.network_cost(usage, model),
        )


def alicloud_billing() -> CloudBilling:
    """vCloud-1: the AliCloud-priced virtual baseline."""
    return CloudBilling(provider="vCloud-1", hardware=ALICLOUD_HARDWARE,
                        hourly_rate=ALICLOUD_ON_DEMAND_HOURLY)


def huawei_billing() -> CloudBilling:
    """vCloud-2: the Huawei-priced virtual baseline."""
    return CloudBilling(provider="vCloud-2", hardware=HUAWEI_HARDWARE,
                        hourly_rate=HUAWEI_ON_DEMAND_HOURLY)
