"""Pricing primitives shared by the NEP / AliCloud / Huawei billing engines.

All prices are RMB and come from Table 5 of the paper.  Hardware package
prices are published as bundles (e.g. AliCloud 2C+8G = 240/month); the
per-unit rates below are linear fits to those bundles, documented next to
each constant.  Bandwidth billing differs per provider and is implemented
in the provider modules; this module holds the shared tier math.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import BillingError

HOURS_PER_MONTH = 24 * 30
SECONDS_PER_MONTH = HOURS_PER_MONTH * 3600


@dataclass(frozen=True)
class HardwareRates:
    """Linear per-unit hardware rates (RMB per month)."""

    cpu_per_core: float
    memory_per_gb: float
    disk_per_gb: float

    def monthly_cost(self, cpu_cores: float, memory_gb: float,
                     disk_gb: float) -> float:
        """Monthly hardware bill for one VM's subscription."""
        if min(cpu_cores, memory_gb, disk_gb) < 0:
            raise BillingError("negative hardware subscription")
        return (self.cpu_per_core * cpu_cores
                + self.memory_per_gb * memory_gb
                + self.disk_per_gb * disk_gb)


#: NEP: 65/CPU, 20/GB memory, 0.35/GB SSD (Table 5, bottom row).
NEP_HARDWARE = HardwareRates(cpu_per_core=65.0, memory_per_gb=20.0,
                             disk_per_gb=0.35)

#: AliCloud fit: 2C+8G=240 and 2C+16G=318 give 9.75/GB memory and
#: 80.5/core; storage is 1/GB.
ALICLOUD_HARDWARE = HardwareRates(cpu_per_core=80.5, memory_per_gb=9.75,
                                  disk_per_gb=1.0)

#: Huawei fit from 2C+4G=152.2 and 2C+8G=251.6: 24.85/GB memory and
#: ~26.4/core; storage 0.7/GB.
HUAWEI_HARDWARE = HardwareRates(cpu_per_core=26.4, memory_per_gb=24.85,
                                disk_per_gb=0.7)


@dataclass(frozen=True)
class TieredRate:
    """Two-tier bandwidth rate: cheap below the knee, expensive above."""

    knee_mbps: float
    below_rate: float
    above_rate: float

    def cost(self, mbps: float) -> float:
        """Cost at one instant/period for a peak of ``mbps``."""
        if mbps < 0:
            raise BillingError(f"negative bandwidth {mbps}")
        below = min(mbps, self.knee_mbps)
        above = max(0.0, mbps - self.knee_mbps)
        return below * self.below_rate + above * self.above_rate


#: Cloud pre-reserved fixed bandwidth: 23/Mbps/month below 5 Mbps then
#: 80/Mbps/month (both AliCloud and Huawei quote the same tiers).
CLOUD_PRERESERVED_MONTHLY = TieredRate(knee_mbps=5.0, below_rate=23.0,
                                       above_rate=80.0)

#: AliCloud on-demand by bandwidth: 0.063/Mbps/hour below 5, 0.248 above.
ALICLOUD_ON_DEMAND_HOURLY = TieredRate(knee_mbps=5.0, below_rate=0.063,
                                       above_rate=0.248)

#: Huawei on-demand by bandwidth: same low tier, 0.25 above.
HUAWEI_ON_DEMAND_HOURLY = TieredRate(knee_mbps=5.0, below_rate=0.063,
                                     above_rate=0.25)

#: Both clouds charge 0.8 RMB/GB for on-demand by traffic quantity.
CLOUD_PER_GB = 0.8

#: NEP bandwidth unit price range across (city, ISP): 15-50/Mbps/month
#: (Table 5: telecom 25-50, CMCC 15-30, varying by city).
NEP_BANDWIDTH_UNIT_RANGE = (15.0, 50.0)


@dataclass(frozen=True)
class BillingBreakdown:
    """One app's monthly bill split into hardware and network."""

    provider: str
    network_model: str
    hardware_rmb: float
    network_rmb: float

    @property
    def total_rmb(self) -> float:
        return self.hardware_rmb + self.network_rmb

    @property
    def network_share(self) -> float:
        total = self.total_rmb
        if total == 0.0:
            return 0.0
        return self.network_rmb / total


def series_to_hourly_peaks(series_mbps: np.ndarray,
                           points_per_hour: int) -> np.ndarray:
    """Collapse a bandwidth series to per-hour peaks (cloud billing).

    Raises:
        BillingError: if the series is not a whole number of hours.
    """
    if points_per_hour < 1:
        raise BillingError(
            f"points_per_hour must be >= 1, got {points_per_hour}"
        )
    if series_mbps.size % points_per_hour:
        raise BillingError(
            f"{series_mbps.size} points is not a whole number of "
            f"{points_per_hour}-point hours"
        )
    return series_mbps.reshape(-1, points_per_hour).max(axis=1)


def series_to_daily_peaks(series_mbps: np.ndarray,
                          points_per_day: int) -> np.ndarray:
    """Collapse a bandwidth series to per-day peaks (NEP billing).

    Raises:
        BillingError: if the series is not a whole number of days.
    """
    if points_per_day < 1:
        raise BillingError(f"points_per_day must be >= 1, got {points_per_day}")
    if series_mbps.size % points_per_day:
        raise BillingError(
            f"{series_mbps.size} points is not a whole number of "
            f"{points_per_day}-point days"
        )
    return series_mbps.reshape(-1, points_per_day).max(axis=1)


def traffic_gb(series_mbps: np.ndarray, interval_minutes: int) -> float:
    """Total traffic in GB moved by a bandwidth series."""
    if interval_minutes <= 0:
        raise BillingError(
            f"interval must be positive, got {interval_minutes}"
        )
    megabits = float(series_mbps.sum()) * interval_minutes * 60.0
    return megabits / 8.0 / 1000.0
