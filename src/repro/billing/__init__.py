"""Billing substrate: NEP and cloud pricing engines, virtual baselines."""

from .baseline import CloudRegion, cluster_usage_to_cloud, nearest_region
from .cloud import (
    CloudBilling,
    NetworkModel,
    alicloud_billing,
    huawei_billing,
)
from .models import (
    ALICLOUD_HARDWARE,
    BillingBreakdown,
    CLOUD_PER_GB,
    CLOUD_PRERESERVED_MONTHLY,
    HUAWEI_HARDWARE,
    HardwareRates,
    NEP_BANDWIDTH_UNIT_RANGE,
    NEP_HARDWARE,
    TieredRate,
    series_to_daily_peaks,
    series_to_hourly_peaks,
    traffic_gb,
)
from .nep import CityPriceBook, NepBilling
from .usage import AppUsage, HardwareSubscription

__all__ = [
    "ALICLOUD_HARDWARE",
    "AppUsage",
    "BillingBreakdown",
    "CLOUD_PER_GB",
    "CLOUD_PRERESERVED_MONTHLY",
    "CityPriceBook",
    "CloudBilling",
    "CloudRegion",
    "HUAWEI_HARDWARE",
    "HardwareRates",
    "HardwareSubscription",
    "NEP_BANDWIDTH_UNIT_RANGE",
    "NEP_HARDWARE",
    "NepBilling",
    "NetworkModel",
    "TieredRate",
    "alicloud_billing",
    "cluster_usage_to_cloud",
    "huawei_billing",
    "nearest_region",
    "series_to_daily_peaks",
    "series_to_hourly_peaks",
    "traffic_gb",
]
