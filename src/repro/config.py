"""Scenario configuration and deterministic randomness.

Everything stochastic in the library draws from a :class:`numpy.random.
Generator` funnelled through :class:`RandomState`, which derives independent
named substreams from one root seed.  Two runs with the same
:class:`Scenario` produce bit-identical datasets, campaigns, and analyses.

The real NEP trace spans 3 months of 1-minute CPU readings over *every* VM of
the platform; regenerating that verbatim would need tens of gigabytes.  The
default scenario keeps the structure (per-VM series, per-server placement,
>500 sites) but reduces the VM count and sampling resolution.  All knobs are
explicit fields, and :meth:`Scenario.paper_scale` returns the full-fidelity
settings for users with the patience for them.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

import numpy as np

from .errors import ConfigurationError

_DEFAULT_SEED = 20211102  # IMC 2021 opening day

#: Fault-injection profiles accepted by :attr:`Scenario.fault_profile`
#: (the CLI's ``--faults``).  ``off`` is the historical fair-weather
#: behaviour; the calibrations live in :mod:`repro.faults.schedule`.
FAULT_PROFILES = ("off", "paper", "harsh")

#: ABR policies accepted by :attr:`Scenario.qoe_abr` (the CLI's
#: ``--abr``); the implementations live in :mod:`repro.qoe.sessions`.
ABR_POLICIES = ("throughput", "buffer")

#: Edge-cache eviction models accepted by
#: :attr:`Scenario.qoe_cache_eviction` (see :mod:`repro.cdn`).
CACHE_EVICTIONS = ("lru", "ttl")

#: Autoscaling modes accepted by :attr:`Scenario.live_autoscale` (the
#: CLI's ``--autoscale``); the policy lives in :mod:`repro.live`.
AUTOSCALE_MODES = ("on", "off")


class RandomState:
    """A root seed plus a family of named, independent substreams.

    Substreams are derived with :class:`numpy.random.SeedSequence` spawn
    keys based on a stable hash of the stream name, so adding a new stream
    never perturbs existing ones and the same name always yields the same
    stream for a given root seed.
    """

    def __init__(self, seed: int = _DEFAULT_SEED) -> None:
        if seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {seed}")
        self.seed = int(seed)

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the named substream.

        Calling twice with the same name returns two generators in the same
        initial state, which keeps independently-constructed components
        reproducible without shared mutable state.
        """
        if not name:
            raise ConfigurationError("stream name must be non-empty")
        # A stable (non-salted) digest of the name; Python's hash() is
        # randomised per process and must not be used here.
        digest = 0
        for ch in name:
            digest = (digest * 131 + ord(ch)) % (2**31 - 1)
        seq = np.random.SeedSequence([self.seed, digest])
        return np.random.default_rng(seq)

    def child(self, name: str) -> "RandomState":
        """Derive a child RandomState, for components that themselves fan out."""
        digest = 0
        for ch in name:
            digest = (digest * 131 + ord(ch)) % (2**31 - 1)
        return RandomState((self.seed * 1_000_003 + digest) % (2**63 - 1))


@dataclass(frozen=True)
class Scenario:
    """All scale and calibration knobs for one end-to-end reproduction.

    Attributes mirror the experiment design of the paper (§2.1); see
    DESIGN.md for the mapping from each knob to the figure it drives.
    """

    seed: int = _DEFAULT_SEED

    # --- platform topology (§2, Table 1) -------------------------------
    nep_site_count: int = 520          # ">500 sites in China"
    nep_servers_per_site_min: int = 8  # "tens or hundreds of servers"
    nep_servers_per_site_max: int = 96
    cloud_region_count: int = 12       # AliCloud China regions

    # --- workload trace (§2.1.2) ----------------------------------------
    nep_vm_count: int = 1200
    azure_vm_count: int = 1200
    trace_days: int = 28               # paper: 92 days (3 months)
    cpu_interval_minutes: int = 5      # paper: 1 minute
    bw_interval_minutes: int = 5       # paper: 5 minutes

    # --- crowd-sourced campaign (§2.1.1) --------------------------------
    participant_count: int = 158
    city_count: int = 41
    pings_per_target: int = 30
    throughput_participants: int = 25
    throughput_edge_vms: int = 20
    iperf_duration_seconds: int = 15

    # --- QoE testbeds (§3.3) --------------------------------------------
    qoe_samples_per_setting: int = 50

    # --- session-scale QoE (beyond §3.3: CDN + ABR sessions) ------------
    qoe_session_count: int = 2000
    qoe_session_ticks: int = 120
    qoe_cache_mb: int = 512
    qoe_catalog_objects: int = 20_000
    qoe_zipf_alpha: float = 0.8
    qoe_abr: str = "throughput"
    qoe_cache_eviction: str = "lru"
    qoe_cache_ttl_s: int = 300

    # --- prediction study (§4.4) ----------------------------------------
    prediction_vm_sample: int = 48     # VMs sampled per platform
    prediction_window_minutes: int = 30
    prediction_train_days: int = 21
    prediction_test_days: int = 7

    # --- billing study (§4.5) -------------------------------------------
    heaviest_app_count: int = 50

    # --- live platform engine (beyond the paper: repro.live) -------------
    live_ticks: int = 720
    live_tick_minutes: int = 1
    live_arrival_rate: float = 6.0        # mean VM arrivals per tick
    live_mean_lifetime_ticks: int = 180   # mean VM dwell time, in ticks
    live_autoscale: str = "on"
    live_flash_crowds: int = 2            # flash-crowd windows per run
    live_flash_magnitude: float = 4.0     # peak arrival multiplier
    live_diurnal_amplitude: float = 0.6   # 0 = flat demand, <1

    # --- fault injection (availability study) ---------------------------
    fault_profile: str = "off"

    def __post_init__(self) -> None:
        positive_fields = (
            "nep_site_count", "nep_servers_per_site_min",
            "nep_servers_per_site_max", "cloud_region_count",
            "nep_vm_count", "azure_vm_count", "trace_days",
            "cpu_interval_minutes", "bw_interval_minutes",
            "participant_count", "city_count", "pings_per_target",
            "throughput_participants", "throughput_edge_vms",
            "iperf_duration_seconds", "qoe_samples_per_setting",
            "prediction_vm_sample", "prediction_window_minutes",
            "prediction_train_days", "prediction_test_days",
            "heaviest_app_count", "qoe_session_count",
            "qoe_session_ticks", "qoe_cache_mb", "qoe_catalog_objects",
            "qoe_cache_ttl_s", "live_ticks", "live_tick_minutes",
            "live_mean_lifetime_ticks",
        )
        for name in positive_fields:
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.nep_servers_per_site_min > self.nep_servers_per_site_max:
            raise ConfigurationError(
                "nep_servers_per_site_min exceeds nep_servers_per_site_max"
            )
        if self.prediction_window_minutes % self.cpu_interval_minutes:
            raise ConfigurationError(
                "prediction window must be a multiple of the CPU interval"
            )
        if self.fault_profile not in FAULT_PROFILES:
            raise ConfigurationError(
                f"fault_profile must be one of {FAULT_PROFILES}, "
                f"got {self.fault_profile!r}"
            )
        if self.qoe_zipf_alpha <= 0:
            raise ConfigurationError(
                f"qoe_zipf_alpha must be positive, got {self.qoe_zipf_alpha}")
        if self.qoe_abr not in ABR_POLICIES:
            raise ConfigurationError(
                f"qoe_abr must be one of {ABR_POLICIES}, "
                f"got {self.qoe_abr!r}")
        if self.qoe_cache_eviction not in CACHE_EVICTIONS:
            raise ConfigurationError(
                f"qoe_cache_eviction must be one of {CACHE_EVICTIONS}, "
                f"got {self.qoe_cache_eviction!r}")
        if self.live_arrival_rate <= 0:
            raise ConfigurationError(
                f"live_arrival_rate must be positive, "
                f"got {self.live_arrival_rate}")
        if self.live_autoscale not in AUTOSCALE_MODES:
            raise ConfigurationError(
                f"live_autoscale must be one of {AUTOSCALE_MODES}, "
                f"got {self.live_autoscale!r}")
        if self.live_flash_crowds < 0:
            raise ConfigurationError(
                f"live_flash_crowds must be non-negative, "
                f"got {self.live_flash_crowds}")
        if self.live_flash_magnitude < 1.0:
            raise ConfigurationError(
                f"live_flash_magnitude must be >= 1, "
                f"got {self.live_flash_magnitude}")
        if not 0.0 <= self.live_diurnal_amplitude < 1.0:
            raise ConfigurationError(
                f"live_diurnal_amplitude must be in [0, 1), "
                f"got {self.live_diurnal_amplitude}")

    @property
    def random(self) -> RandomState:
        """Root random state for this scenario."""
        return RandomState(self.seed)

    @property
    def trace_minutes(self) -> int:
        """Total trace span in minutes."""
        return self.trace_days * 24 * 60

    def with_overrides(self, **changes: object) -> "Scenario":
        """Return a copy of this scenario with the given fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def cache_token(self, exclude: tuple[str, ...] = ()) -> str:
        """Canonical JSON of every knob, for artifact-cache keys.

        Two scenarios with equal fields produce the same token; any
        field difference (seed, scale, fault profile, ...) changes it,
        so cached artifacts can never be served across configurations.

        ``exclude`` drops the named fields from the token — for
        artifacts that are provably independent of them (workload
        generation never reads ``fault_profile``, so fault-sweep cells
        can share one rendered trace).  Excluding a field an artifact
        *does* depend on would silently serve stale data, so callers
        must only exclude fields the producing code never consults.

        Raises:
            ConfigurationError: when ``exclude`` names an unknown field.
        """
        fields = dataclasses.asdict(self)
        for name in exclude:
            if name not in fields:
                raise ConfigurationError(
                    f"cannot exclude unknown scenario field {name!r}")
            del fields[name]
        return json.dumps(fields, sort_keys=True, separators=(",", ":"))

    @classmethod
    def paper_scale(cls) -> "Scenario":
        """Full-fidelity settings matching the paper's data volumes.

        This is expensive (months of 1-minute series) and exists mostly to
        document what the defaults were scaled down from.
        """
        return cls(
            trace_days=92,
            cpu_interval_minutes=1,
            nep_vm_count=20_000,
            azure_vm_count=20_000,
            prediction_vm_sample=512,
            qoe_session_count=20_000,
            live_ticks=2880,
            live_arrival_rate=60.0,
        )

    @classmethod
    def city_scale(cls) -> "Scenario":
        """Beyond-paper settings: a ~1M-VM national edge fleet.

        One series kind at this scale is ~0.5 TB of float32 rows
        (1M VMs x 92 d of 1-minute readings), which no single process
        can hold — runs at this tier force the streaming workload path
        (sharded on-disk series, chunked analyses; see
        ``docs/performance.md``).  The topology grows to 4000 sites
        with deeper racks, matching the "tens or hundreds of servers"
        envelope at metro density.
        """
        return cls(
            nep_site_count=4000,
            nep_servers_per_site_min=24,
            nep_servers_per_site_max=192,
            trace_days=92,
            cpu_interval_minutes=1,
            nep_vm_count=1_000_000,
            azure_vm_count=1_000_000,
            prediction_vm_sample=512,
            qoe_session_count=1_000_000,
            qoe_catalog_objects=50_000,
            live_ticks=1440,
            live_arrival_rate=700.0,
            live_mean_lifetime_ticks=360,
        )

    @classmethod
    def smoke_scale(cls) -> "Scenario":
        """Tiny settings for fast tests and CI smoke runs."""
        return cls(
            nep_site_count=60,
            nep_vm_count=120,
            azure_vm_count=120,
            trace_days=7,
            participant_count=24,
            city_count=12,
            pings_per_target=10,
            throughput_participants=6,
            throughput_edge_vms=5,
            qoe_samples_per_setting=12,
            qoe_session_count=500,
            qoe_session_ticks=60,
            qoe_catalog_objects=2000,
            prediction_vm_sample=8,
            prediction_train_days=5,
            prediction_test_days=2,
            heaviest_app_count=10,
            live_ticks=240,
            live_arrival_rate=3.0,
            live_mean_lifetime_ticks=90,
        )


DEFAULT_SCENARIO = Scenario()
