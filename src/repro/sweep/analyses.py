"""The analyses a sweep cell can run: figure reports plus ablations.

One registry unifies the two result surfaces the repo grew separately:
the :data:`~repro.reports.REPORTS` figure/table functions (``fig2a``,
``table3``, ...) and the six :data:`~repro.core.ablations.ABLATIONS`
(``ablation_density``, ...).  Both run against one
:class:`~repro.study.EdgeStudy` and come back as a uniform
:class:`AnalysisResult`, which is what lands in a cell's
``result.json`` and feeds ``repro sweep report`` deltas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ablations import ABLATIONS
from ..errors import ConfigurationError
from ..reports import REPORTS

#: Prefix distinguishing ablation ids from figure-report ids.
ABLATION_PREFIX = "ablation_"


@dataclass(frozen=True)
class AnalysisResult:
    """One analysis's rendered text plus machine-readable extras.

    Figure reports carry only ``text``; ablations add their numeric
    ``metrics`` and qualitative check tallies.
    """

    name: str
    text: str
    metrics: dict[str, float]
    checks_ok: int
    checks_total: int

    @property
    def holds(self) -> bool:
        """True when every check passed (vacuously for pure reports)."""
        return self.checks_ok == self.checks_total

    def to_dict(self) -> dict:
        """JSON-ready view (cell ``result.json``)."""
        return {"name": self.name, "text": self.text,
                "metrics": self.metrics, "checks_ok": self.checks_ok,
                "checks_total": self.checks_total}


#: Every analysis id a sweep cell may select.
ANALYSES: tuple[str, ...] = tuple(REPORTS) + tuple(
    f"{ABLATION_PREFIX}{name}" for name in ABLATIONS)


def run_analysis(name: str, study) -> AnalysisResult:
    """Run one analysis by id against a study.

    Raises:
        ConfigurationError: on unknown analysis ids.
    """
    if name.startswith(ABLATION_PREFIX):
        runner = ABLATIONS.get(name[len(ABLATION_PREFIX):])
        if runner is None:
            raise ConfigurationError(f"unknown analysis {name!r}")
        outcome = runner(study)
        return AnalysisResult(
            name=name, text=outcome.text, metrics=dict(outcome.metrics),
            checks_ok=outcome.checks_ok, checks_total=len(outcome.checks))
    report = REPORTS.get(name)
    if report is None:
        raise ConfigurationError(f"unknown analysis {name!r}")
    text = report(study)
    # The session-QoE and live-engine reports are the figure reports
    # with a natural numeric surface — their summaries feed the
    # cross-cell comparison columns like an ablation's metrics do.
    if name == "qoe-sessions":
        metrics = study.qoe_sessions.metrics()
    elif name == "live":
        metrics = study.live.metrics()
    else:
        metrics = {}
    return AnalysisResult(name=name, text=text, metrics=metrics,
                          checks_ok=0, checks_total=0)
