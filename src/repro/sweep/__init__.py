"""Declarative, parallel, resumable scenario sweeps.

The paper's results are a *campaign* — 20+ figures and six ablations
over scales x seeds x fault profiles — and this package is the driver
that regenerates them as one unit instead of N independent cold runs:

* :mod:`repro.sweep.spec` — TOML/JSON grid configs expanded into
  validated :class:`SweepCell` lists;
* :mod:`repro.sweep.analyses` — the per-cell analysis registry
  (figure reports + the six ablations);
* :mod:`repro.sweep.runner` — the executor: cells grouped by workload
  cache identity so shared artifacts render exactly once, scheduled
  over a :class:`~repro.parallel.TaskFarm`, each cell's output
  published with staging + atomic rename (crash-resumable);
* :mod:`repro.sweep.report` — the cross-cell comparison report.

Usage::

    from repro.sweep import load_sweep_spec, run_sweep

    spec = load_sweep_spec("benchmarks/sweeps/ablations.toml")
    result = run_sweep(spec, "out/ablations", cache_dir="~/.cache/repro",
                       jobs=2)
    assert result.ok

See ``docs/sweep.md`` for the grid schema and resume semantics.
"""

from .analyses import ANALYSES, AnalysisResult, run_analysis
from .report import load_manifest, render_sweep_report
from .runner import (
    CellOutcome,
    SweepResult,
    run_sweep,
    workload_group_token,
)
from .spec import SweepCell, SweepSpec, load_sweep_spec, parse_sweep_spec

__all__ = [
    "ANALYSES",
    "AnalysisResult",
    "CellOutcome",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "load_manifest",
    "load_sweep_spec",
    "parse_sweep_spec",
    "render_sweep_report",
    "run_analysis",
    "run_sweep",
    "workload_group_token",
]
