"""Declarative sweep grids: TOML/JSON spec -> expanded cells.

A sweep config names a campaign over scenario axes.  Three sections:

``[defaults]``
    Baseline values every cell inherits: ``scale``, ``seed``,
    ``faults``, ``jobs`` (per-cell series workers), ``analyses`` (list
    of analysis ids, see :mod:`repro.sweep.analyses`), and
    ``[defaults.overrides]`` (scenario field replacements).

``[grid]``
    Cartesian axes — ``scale``/``seed``/``faults``/``jobs`` lists plus
    ``[grid.overrides]`` mapping scenario fields to value lists.  The
    product of all axes becomes one cell per combination, auto-named
    from the varying axes (``seed7-faults_paper``).

``[[cells]]``
    Explicit cells (each may set any default-able key plus ``name``).
    Grid and explicit cells can coexist; names must be unique.

Every value is validated at load time — unknown scales, fault
profiles, analysis ids, or scenario fields fail before any work runs.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass
from pathlib import Path

from ..config import FAULT_PROFILES, Scenario
from ..errors import ConfigurationError
from ..study import SCALES, scenario_for
from .analyses import ANALYSES

try:
    import tomllib
except ImportError:  # pragma: no cover - python < 3.11
    tomllib = None

_SCENARIO_FIELDS = {f.name for f in dataclasses.fields(Scenario)}

#: Keys a cell (or the defaults table) may set besides ``overrides``.
_CELL_KEYS = ("scale", "seed", "faults", "jobs", "analyses")


@dataclass(frozen=True)
class SweepCell:
    """One fully-resolved point of the sweep grid."""

    name: str
    scale: str = "smoke"
    seed: int | None = None
    faults: str = "off"
    jobs: int = 1
    analyses: tuple[str, ...] = ()
    #: Scenario field replacements, sorted for a canonical identity.
    overrides: tuple[tuple[str, object], ...] = ()

    def scenario(self) -> Scenario:
        """The scenario this cell runs."""
        return scenario_for(self.scale, self.seed, self.faults,
                            dict(self.overrides))

    def to_dict(self) -> dict:
        """JSON-ready view (spec provenance, manifests)."""
        return {
            "name": self.name, "scale": self.scale, "seed": self.seed,
            "faults": self.faults, "jobs": self.jobs,
            "analyses": list(self.analyses),
            "overrides": dict(self.overrides),
        }


@dataclass(frozen=True)
class SweepSpec:
    """A named sweep: the expanded, validated cell list."""

    name: str
    cells: tuple[SweepCell, ...]

    def cell(self, name: str) -> SweepCell:
        """Look one cell up by name.

        Raises:
            ConfigurationError: when no cell has that name.
        """
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise ConfigurationError(
            f"sweep {self.name!r} has no cell {name!r}")

    def to_dict(self) -> dict:
        """JSON-ready view of the whole spec."""
        return {"name": self.name,
                "cells": [cell.to_dict() for cell in self.cells]}


def _require_mapping(value: object, where: str) -> dict:
    if not isinstance(value, dict):
        raise ConfigurationError(f"{where} must be a table/object, "
                                 f"got {type(value).__name__}")
    return value


def _check_overrides(overrides: dict, where: str) -> None:
    for field in overrides:
        if field not in _SCENARIO_FIELDS:
            raise ConfigurationError(
                f"{where}: unknown scenario field {field!r}")
        if field in ("seed", "fault_profile"):
            raise ConfigurationError(
                f"{where}: set {field!r} through the seed/faults axis, "
                f"not overrides")


def _check_cell_keys(table: dict, where: str,
                     extra: tuple[str, ...] = ()) -> None:
    allowed = set(_CELL_KEYS) | {"overrides"} | set(extra)
    unknown = sorted(set(table) - allowed)
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"expected {', '.join(sorted(allowed))}")


def _build_cell(name: str, merged: dict, where: str) -> SweepCell:
    scale = merged.get("scale", "smoke")
    if scale not in SCALES:
        raise ConfigurationError(
            f"{where}: unknown scale {scale!r}, expected one of {SCALES}")
    faults = merged.get("faults", "off")
    if faults not in FAULT_PROFILES:
        raise ConfigurationError(
            f"{where}: unknown fault profile {faults!r}, expected one of "
            f"{FAULT_PROFILES}")
    seed = merged.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise ConfigurationError(f"{where}: seed must be an integer")
    jobs = merged.get("jobs", 1)
    if not isinstance(jobs, int) or jobs < 0:
        raise ConfigurationError(
            f"{where}: jobs must be a non-negative integer")
    analyses = merged.get("analyses", [])
    if isinstance(analyses, str):
        analyses = [analyses]
    if not analyses:
        raise ConfigurationError(f"{where}: needs at least one analysis")
    for analysis in analyses:
        if analysis not in ANALYSES:
            raise ConfigurationError(
                f"{where}: unknown analysis {analysis!r} "
                f"(see 'repro sweep analyses')")
    overrides = _require_mapping(merged.get("overrides", {}),
                                 f"{where}.overrides")
    _check_overrides(overrides, where)
    cell = SweepCell(
        name=name, scale=scale, seed=seed, faults=faults, jobs=jobs,
        analyses=tuple(analyses),
        overrides=tuple(sorted(overrides.items())),
    )
    cell.scenario()  # surface invalid override values at load time
    return cell


def _axis_label(axis: str, value: object) -> str:
    text = str(value).replace("/", "-")
    return f"{axis}_{text}" if isinstance(value, str) else f"{axis}{text}"


def _expand_grid(grid: dict, defaults: dict) -> list[tuple[str, dict]]:
    """(auto-name, merged-cell-table) for every grid combination."""
    _check_cell_keys(grid, "[grid]")
    axes: list[tuple[str, list]] = []
    for key in _CELL_KEYS:
        if key not in grid:
            continue
        values = grid[key]
        if not isinstance(values, list) or not values:
            raise ConfigurationError(
                f"[grid].{key} must be a non-empty list")
        axes.append((key, values))
    for field, values in _require_mapping(
            grid.get("overrides", {}), "[grid].overrides").items():
        _check_overrides({field: None}, "[grid].overrides")
        if not isinstance(values, list) or not values:
            raise ConfigurationError(
                f"[grid].overrides.{field} must be a non-empty list")
        axes.append((f"overrides.{field}", values))
    if not axes:
        raise ConfigurationError("[grid] declares no axes")
    varying = [axis for axis, values in axes if len(values) > 1]
    cells = []
    for combo in itertools.product(*(values for _, values in axes)):
        merged = dict(defaults)
        merged["overrides"] = dict(
            _require_mapping(defaults.get("overrides", {}),
                             "[defaults].overrides"))
        parts = []
        for (axis, _), value in zip(axes, combo):
            if axis.startswith("overrides."):
                merged["overrides"][axis.split(".", 1)[1]] = value
            else:
                merged[axis] = value
            if axis in varying:
                parts.append(_axis_label(axis.split(".")[-1], value))
        cells.append(("-".join(parts) if parts else "cell", merged))
    return cells


def parse_sweep_spec(data: dict, name: str = "sweep") -> SweepSpec:
    """Validate and expand a parsed config mapping into a spec.

    Raises:
        ConfigurationError: on any schema or value error.
    """
    data = _require_mapping(data, "sweep config")
    unknown = sorted(set(data) - {"name", "defaults", "grid", "cells"})
    if unknown:
        raise ConfigurationError(
            f"sweep config: unknown top-level key(s) "
            f"{', '.join(map(repr, unknown))}")
    sweep_name = data.get("name", name)
    defaults = _require_mapping(data.get("defaults", {}), "[defaults]")
    _check_cell_keys(defaults, "[defaults]")

    named: list[tuple[str, dict]] = []
    if "grid" in data:
        named.extend(_expand_grid(
            _require_mapping(data["grid"], "[grid]"), defaults))
    for index, table in enumerate(data.get("cells", [])):
        table = _require_mapping(table, f"[[cells]] #{index}")
        _check_cell_keys(table, f"[[cells]] #{index}", extra=("name",))
        merged = dict(defaults)
        merged.update({k: v for k, v in table.items()
                       if k not in ("name", "overrides")})
        merged["overrides"] = {
            **_require_mapping(defaults.get("overrides", {}),
                               "[defaults].overrides"),
            **_require_mapping(table.get("overrides", {}),
                               f"[[cells]] #{index}.overrides"),
        }
        named.append((str(table.get("name", f"cell{index}")), merged))

    if not named:
        raise ConfigurationError(
            "sweep config declares no cells (need [grid] or [[cells]])")
    cells = []
    seen: set[str] = set()
    for cell_name, merged in named:
        if cell_name in seen:
            raise ConfigurationError(
                f"duplicate cell name {cell_name!r} (name explicit cells, "
                f"or vary a grid axis)")
        seen.add(cell_name)
        cells.append(_build_cell(cell_name, merged,
                                 f"cell {cell_name!r}"))
    return SweepSpec(name=str(sweep_name), cells=tuple(cells))


def load_sweep_spec(path: str | Path) -> SweepSpec:
    """Load a sweep spec from a ``.toml`` or ``.json`` file.

    Raises:
        ConfigurationError: on unreadable files or schema errors.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigurationError(f"cannot read sweep config: {exc}") from exc
    if path.suffix == ".json":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"invalid JSON in {path}: {exc}") from exc
    elif path.suffix == ".toml":
        if tomllib is None:  # pragma: no cover - python < 3.11
            raise ConfigurationError(
                "TOML sweep configs need Python >= 3.11 (tomllib); "
                "use JSON instead")
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise ConfigurationError(
                f"invalid TOML in {path}: {exc}") from exc
    else:
        raise ConfigurationError(
            f"sweep config must be .toml or .json, got {path.name!r}")
    return parse_sweep_spec(data, name=path.stem)
