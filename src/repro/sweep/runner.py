"""The sweep executor: dedup-aware scheduling, resume, journal merge.

Execution model
---------------

Cells are grouped by their **workload cache identity** — the scenario
token minus the fields workload artifacts ignore (see
:data:`~repro.cache.ARTIFACT_TOKEN_EXCLUDES`).  Within a group, the
first pending cell runs alone as the *leader*, rendering every shared
artifact cold into the sweep's :class:`~repro.cache.ArtifactCache`;
once it finishes, the remaining *followers* are released all at once
and load the shared artifacts warm.  Groups are mutually independent,
so leaders of different groups run concurrently up to ``--jobs``.
Cells execute in non-daemonic forked workers
(:class:`~repro.parallel.TaskFarm`), so each cell may itself run a
series pool.  Without a cache every cell is its own group (nothing can
be shared, nothing is serialised).

Resume discipline
-----------------

A cell's output directory (``cells/<name>/`` with ``journal.jsonl`` and
``result.json``) is staged under ``cells/.tmp-*`` and published with
one atomic :func:`os.rename` — the same discipline as
:class:`~repro.cache.ArtifactCache`.  A killed sweep therefore leaves
only complete cells visible; rerunning the same config into the same
output directory skips cells whose ``result.json`` says ``ok``,
re-runs failed or missing ones, and sweeps stale staging directories.
A finished sweep re-run is a no-op.  Completed cells are never
rewritten, so their journals are byte-identical across an interrupted
run, its resume, and a clean run.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path

from ..cache import ARTIFACT_TOKEN_EXCLUDES, ArtifactCache
from ..errors import ConfigurationError, ReproError
from ..obs import RunJournal, merge_cell_journal, read_journal
from ..parallel import TaskFarm
from ..resilience import failpoint
from ..study import EdgeStudy
from .analyses import run_analysis
from .spec import SweepCell, SweepSpec

#: File names inside a sweep output directory.
SPEC_NAME = "spec.json"
MANIFEST_NAME = "sweep.json"
JOURNAL_NAME = "sweep.jsonl"
CELLS_DIR = "cells"
RESULT_NAME = "result.json"


@dataclass(frozen=True)
class CellOutcome:
    """How one cell ended this sweep invocation."""

    name: str
    status: str            # "ok" | "failed" | "resumed"
    wall_s: float
    checks_ok: int
    checks_total: int
    group: str
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True unless the cell failed."""
        return self.status != "failed"


@dataclass(frozen=True)
class SweepResult:
    """The outcome of one ``run_sweep`` invocation."""

    name: str
    out_dir: Path
    cells: tuple[CellOutcome, ...]
    wall_s: float

    @property
    def ok(self) -> bool:
        """True when every cell completed."""
        return all(cell.ok for cell in self.cells)

    @property
    def resumed(self) -> int:
        """Cells skipped because a previous run already completed them."""
        return sum(1 for c in self.cells if c.status == "resumed")

    @property
    def failed(self) -> tuple[str, ...]:
        """Names of the cells that failed."""
        return tuple(c.name for c in self.cells if not c.ok)


def workload_group_token(cell: SweepCell) -> str:
    """The dedup-group identity of a cell: its workload cache token.

    Two cells with equal tokens render identical workload artifacts, so
    only one of them needs a cold run against a shared cache.
    """
    exclude = ARTIFACT_TOKEN_EXCLUDES.get("workload_nep", ())
    token = cell.scenario().cache_token(exclude=exclude)
    return sha256(token.encode("utf-8")).hexdigest()[:12]


def _write_json_atomic(path: Path, payload: dict) -> None:
    staging = path.with_name(path.name + ".part")
    staging.write_text(json.dumps(payload, indent=2, sort_keys=True)
                       + "\n", encoding="utf-8")
    os.replace(staging, path)


def _execute_cell(task: dict) -> dict:
    """Worker body: run one cell, publish its directory atomically."""
    cell: SweepCell = task["cell"]
    # Chaos site: fires before any output exists, so a tripped cell
    # leaves nothing behind and the farm's retry (serial mode) or a
    # sweep resume (pooled mode) re-runs it from scratch.
    failpoint("sweep.cell", cell.name)
    cells_dir = Path(task["cells_dir"])
    staging = cells_dir / f".tmp-{cell.name}-{os.getpid()}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir(parents=True)
    journal = RunJournal(staging / "journal.jsonl")
    started = time.perf_counter()
    status, error = "ok", None
    study = None
    analyses: list[dict] = []
    try:
        scenario = cell.scenario()
        cache = (ArtifactCache(task["cache_dir"], journal=journal)
                 if task["cache_dir"] is not None else None)
        study = EdgeStudy(scenario, jobs=cell.jobs, cache=cache,
                          journal=journal, streaming=task["streaming"])
        for name in cell.analyses:
            # One failing analysis fails the cell but not its siblings.
            try:
                analyses.append(run_analysis(name, study).to_dict())
            except ReproError as exc:
                status = "failed"
                error = f"{name}: {exc}"
                journal.warn(f"analysis {name} failed: {exc}",
                             analysis=name)
    except Exception as exc:  # noqa: BLE001 - reported via result.json
        status, error = "failed", f"{type(exc).__name__}: {exc}"
    wall_s = round(time.perf_counter() - started, 6)
    checks_ok = sum(a["checks_ok"] for a in analyses)
    checks_total = sum(a["checks_total"] for a in analyses)
    result = {
        "cell": cell.to_dict(),
        "status": status,
        "error": error,
        "wall_s": wall_s,
        "checks_ok": checks_ok,
        "checks_total": checks_total,
        "analyses": analyses,
    }
    (staging / RESULT_NAME).write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    journal.close(status=status, error=error,
                  counters=study.perf.counters or None
                  if study is not None else None)
    final = cells_dir / cell.name
    if final.exists():
        shutil.rmtree(final)
    os.rename(staging, final)
    return {"status": status, "error": error, "wall_s": wall_s,
            "checks_ok": checks_ok, "checks_total": checks_total}


def _load_completed(cell_dir: Path) -> dict | None:
    """A prior run's ``result.json`` when the cell completed ok."""
    try:
        result = json.loads((cell_dir / RESULT_NAME).read_text(
            encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return result if result.get("status") == "ok" else None


def run_sweep(spec: SweepSpec, out_dir: str | Path,
              cache_dir: str | None = None, jobs: int = 1,
              streaming: str = "auto",
              echo=None) -> SweepResult:
    """Run (or resume) a sweep into ``out_dir``.

    ``jobs`` bounds how many *cells* run concurrently (each cell's own
    series-pool width is the cell's ``jobs`` knob).  ``cache_dir`` is
    the shared artifact cache enabling cross-cell dedup; ``None``
    disables both caching and grouping.  ``echo`` receives sweep
    journal events as they are emitted (the CLI's progress line hook).

    Raises:
        ConfigurationError: when ``out_dir`` already holds a different
            sweep spec.
    """
    started = time.perf_counter()
    out = Path(out_dir)
    cells_dir = out / CELLS_DIR
    cells_dir.mkdir(parents=True, exist_ok=True)

    spec_payload = spec.to_dict()
    spec_path = out / SPEC_NAME
    if spec_path.exists():
        previous = json.loads(spec_path.read_text(encoding="utf-8"))
        if previous != spec_payload:
            raise ConfigurationError(
                f"{out} already holds sweep {previous.get('name')!r} with "
                f"a different grid; use a fresh output directory")
    else:
        _write_json_atomic(spec_path, spec_payload)

    # A killed run can leave half-written staging directories; they are
    # invisible to resume (never under a final name) and swept here.
    for stale in cells_dir.glob(".tmp-*"):
        shutil.rmtree(stale, ignore_errors=True)

    journal = RunJournal(out / JOURNAL_NAME, echo=echo)
    outcomes: dict[str, CellOutcome] = {}
    groups: dict[str, str] = {}
    pending: list[SweepCell] = []
    for cell in spec.cells:
        groups[cell.name] = workload_group_token(cell)
        completed = _load_completed(cells_dir / cell.name)
        if completed is not None:
            outcomes[cell.name] = CellOutcome(
                name=cell.name, status="resumed",
                wall_s=completed.get("wall_s", 0.0),
                checks_ok=completed.get("checks_ok", 0),
                checks_total=completed.get("checks_total", 0),
                group=groups[cell.name])
        else:
            pending.append(cell)
    journal.emit("sweep_start", sweep=spec.name, cells=len(spec.cells),
                 pending=len(pending), resumed=len(outcomes),
                 jobs=jobs, cache=cache_dir is not None)

    # Group pending cells by workload identity.  A group whose artifacts
    # are already cached (some cell completed in a prior run) needs no
    # leader; otherwise the first pending cell runs alone first.
    queue: dict[str, list[SweepCell]] = {}
    warm: set[str] = {groups[name] for name in outcomes}
    for cell in pending:
        queue.setdefault(groups[cell.name], []).append(cell)

    task_base = {"cells_dir": str(cells_dir), "cache_dir": cache_dir,
                 "streaming": streaming}

    def submit(farm: TaskFarm, cell: SweepCell, role: str) -> None:
        journal.emit("cell_scheduled", cell=cell.name,
                     group=groups[cell.name], role=role)
        farm.submit(cell.name, _execute_cell,
                    {**task_base, "cell": cell})

    with TaskFarm(jobs, journal=journal) as farm:
        for token, members in queue.items():
            if cache_dir is None or token in warm:
                for cell in members:
                    submit(farm, cell, "follower")
                queue[token] = []
            else:
                submit(farm, members.pop(0), "leader")
        while farm.outstanding:
            outcome = farm.next_outcome()
            token = groups[outcome.task_id]
            if outcome.ok:
                summary = outcome.value
                outcomes[outcome.task_id] = CellOutcome(
                    name=outcome.task_id, status=summary["status"],
                    wall_s=summary["wall_s"],
                    checks_ok=summary["checks_ok"],
                    checks_total=summary["checks_total"],
                    group=token, error=summary["error"])
            else:
                # The worker itself died (OOM, SIGKILL) or the cell code
                # raised past the result writer.
                outcomes[outcome.task_id] = CellOutcome(
                    name=outcome.task_id, status="failed", wall_s=0.0,
                    checks_ok=0, checks_total=0, group=token,
                    error=outcome.error)
            journal.emit("cell_done", cell=outcome.task_id,
                         status=outcomes[outcome.task_id].status,
                         group=token)
            # The group's artifacts are now cached (even a failed leader
            # usually rendered the workload before dying; followers that
            # miss simply render again).  Release everyone waiting.
            for cell in queue.get(token, []):
                submit(farm, cell, "follower")
            queue[token] = []

    # Deterministic tail: fold every cell journal in spec order.
    for cell in spec.cells:
        outcome = outcomes.get(cell.name)
        if outcome is None:  # pragma: no cover - defensive
            continue
        if outcome.status == "resumed":
            journal.emit("cell_resumed", cell=cell.name)
        journal_path = cells_dir / cell.name / "journal.jsonl"
        if journal_path.exists():
            events, _ = read_journal(journal_path)
            merge_cell_journal(journal, cell.name, events)

    ordered = tuple(outcomes[cell.name] for cell in spec.cells
                    if cell.name in outcomes)
    wall_s = round(time.perf_counter() - started, 6)
    result = SweepResult(name=spec.name, out_dir=out, cells=ordered,
                         wall_s=wall_s)
    _write_json_atomic(out / MANIFEST_NAME, {
        "sweep": spec.name,
        "wall_s": wall_s,
        "jobs": jobs,
        "cache": cache_dir is not None,
        "ok": result.ok,
        "cells": [{
            "name": c.name, "status": c.status, "wall_s": c.wall_s,
            "checks_ok": c.checks_ok, "checks_total": c.checks_total,
            "group": c.group, "error": c.error,
        } for c in ordered],
    })
    journal.close(status="ok" if result.ok else "failed",
                  error=None if result.ok else
                  f"{len(result.failed)} cell(s) failed: "
                  f"{', '.join(result.failed)}")
    return result
