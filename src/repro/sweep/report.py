"""Cross-cell comparison report (``repro sweep report``).

Renders a completed (or partially completed) sweep output directory:
a per-cell summary table (status, wall time, cache temperature,
check tally), metric deltas against a baseline cell, and
``trace diff``-style phase deltas — the whole campaign on one screen.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.report import format_table
from ..errors import ConfigurationError
from ..obs import read_journal
from ..obs.trace import phase_breakdown
from .runner import CELLS_DIR, MANIFEST_NAME, RESULT_NAME


def load_manifest(out_dir: str | Path) -> dict:
    """The ``sweep.json`` manifest of a sweep output directory.

    Raises:
        ConfigurationError: when the directory holds no manifest (the
            sweep never ran, or was killed before any scheduling pass
            finished — rerun ``repro sweep run`` first).
    """
    path = Path(out_dir) / MANIFEST_NAME
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(
            f"no sweep manifest at {path} (run 'repro sweep run' "
            f"first): {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"corrupt sweep manifest at {path}: {exc}") from exc


def _cell_result(out_dir: Path, name: str) -> dict:
    path = out_dir / CELLS_DIR / name / RESULT_NAME
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}


def _cell_phases(out_dir: Path, name: str) -> dict[str, dict]:
    path = out_dir / CELLS_DIR / name / "journal.jsonl"
    if not path.exists():
        return {}
    events, _ = read_journal(path)
    return phase_breakdown(events)


def _cell_metrics(result: dict) -> dict[str, float]:
    metrics: dict[str, float] = {}
    for analysis in result.get("analyses", []):
        metrics.update(analysis.get("metrics", {}))
    return metrics


def _cache_tally(phases: dict[str, dict]) -> str:
    cached = sum(1 for entry in phases.values() if entry.get("cached"))
    return f"{cached}/{len(phases)}" if phases else "-"


def render_sweep_report(out_dir: str | Path,
                        baseline: str | None = None) -> str:
    """The full cross-cell report for a sweep output directory.

    ``baseline`` names the cell metric/phase deltas are computed
    against (default: the first cell in the manifest).

    Raises:
        ConfigurationError: on a missing manifest or unknown baseline.
    """
    out = Path(out_dir)
    manifest = load_manifest(out)
    cells = manifest.get("cells", [])
    if not cells:
        return f"sweep {manifest.get('sweep')!r}: no cells recorded"
    names = [c["name"] for c in cells]
    if baseline is None:
        baseline = names[0]
    elif baseline not in names:
        raise ConfigurationError(
            f"unknown baseline cell {baseline!r}; sweep has: "
            f"{', '.join(names)}")

    results = {name: _cell_result(out, name) for name in names}
    phases = {name: _cell_phases(out, name) for name in names}

    rows = []
    for entry in cells:
        name = entry["name"]
        checks = (f"{entry.get('checks_ok', 0)}"
                  f"/{entry.get('checks_total', 0)}"
                  if entry.get("checks_total") else "-")
        rows.append((name, entry.get("status", "?"),
                     f"{entry.get('wall_s', 0.0):.2f}",
                     _cache_tally(phases[name]), checks,
                     entry.get("error") or ""))
    parts = [format_table(
        ["cell", "status", "wall (s)", "cached phases", "checks",
         "error"], rows,
        title=f"Sweep {manifest.get('sweep')!r} — "
              f"{len(cells)} cells, {manifest.get('wall_s', 0.0):.2f}s "
              f"wall, jobs={manifest.get('jobs')}")]

    base_metrics = _cell_metrics(results[baseline])
    base_phases = phases[baseline]
    for name in names:
        if name == baseline:
            continue
        delta_rows = []
        metrics = _cell_metrics(results[name])
        # Union, not intersection: a cell whose analysis set differs
        # from the baseline's (heterogeneous sweeps) still shows its
        # one-sided metrics, with "-" placeholders where the other
        # side has no value.
        for key in sorted(set(base_metrics) | set(metrics)):
            if key not in base_metrics or key not in metrics:
                delta_rows.append(
                    (key,
                     f"{base_metrics[key]:.3f}"
                     if key in base_metrics else "-",
                     f"{metrics[key]:.3f}" if key in metrics else "-",
                     "-"))
                continue
            a, b = base_metrics[key], metrics[key]
            ratio = f"{b / a:.2f}x" if abs(a) > 1e-9 else "-"
            delta_rows.append((key, f"{a:.3f}", f"{b:.3f}", ratio))
        for phase in dict.fromkeys(list(base_phases) + list(phases[name])):
            pa = base_phases.get(phase)
            pb = phases[name].get(phase)
            if pa is None or pb is None:
                delta_rows.append(
                    (f"phase:{phase}", "-" if pa is None
                     else f"{pa.get('wall_s', 0.0):.3f}s",
                     "-" if pb is None
                     else f"{pb.get('wall_s', 0.0):.3f}s", "-"))
                continue
            wa, wb = pa.get("wall_s", 0.0), pb.get("wall_s", 0.0)
            note = ""
            if pa.get("cached") != pb.get("cached"):
                note = ("hit->gen" if pa.get("cached") else "gen->hit")
            delta_rows.append((f"phase:{phase}", f"{wa:.3f}s",
                               f"{wb:.3f}s", note or
                               (f"{wb / wa:.2f}x" if wa > 1e-9 else "-")))
        if delta_rows:
            parts.append(format_table(
                ["metric", baseline, name, "delta"], delta_rows,
                title=f"{baseline} vs {name}"))
    return "\n\n".join(parts)
