"""Lightweight performance telemetry: named spans and counters.

The simulator's batch engine exists to make paper-scale runs practical;
this module is how that speed is *tracked*.  A :class:`PerfRegistry`
accumulates wall-clock and CPU time per named phase (plus arbitrary
counters), :class:`~repro.study.EdgeStudy` carries one and wraps each
expensive phase in a span, and ``scripts/bench_study.py`` serialises the
result to ``BENCH_study.json`` so regressions show up in CI.

Spans nest and re-enter safely: each ``with`` block adds its own elapsed
time and bumps the call count, so a phase touched twice reports the sum.

Usage::

    perf = PerfRegistry()
    with perf.span("campaign_latency"):
        results = campaign.run_latency()
    perf.count("observations", len(results.latency))
    print(perf.report())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class SpanStats:
    """Accumulated timings of one named phase.

    A plain picklable dataclass: worker processes ship their stats back
    to the parent, which folds them in via :meth:`merge` /
    :meth:`PerfRegistry.merge`.
    """

    wall_s: float = 0.0
    cpu_s: float = 0.0
    calls: int = 0

    def merge(self, other: "SpanStats") -> None:
        """Add another span's accumulated timings to this one."""
        self.wall_s += other.wall_s
        self.cpu_s += other.cpu_s
        self.calls += other.calls

    def as_dict(self) -> dict[str, float | int]:
        """JSON-ready view of the accumulated timings."""
        return {
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "calls": self.calls,
        }


class PerfRegistry:
    """Accumulates span timings and counters for one study/run.

    When a :class:`~repro.obs.journal.RunJournal` is attached
    (``journal=``), every span additionally emits ``span_begin`` /
    ``span_end`` journal events — the timing bridge of the structured
    observability layer.  Worker-process registries are created *without*
    a journal and folded in via :meth:`merge`, which emits nothing, so
    journals stay identical across ``--jobs`` settings.
    """

    def __init__(self, journal=None) -> None:
        self._spans: dict[str, SpanStats] = {}
        self._counters: dict[str, int] = {}
        #: Optional :class:`repro.obs.journal.RunJournal` bridged by spans.
        self.journal = journal

    # ---- recording -------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a phase; wall and CPU elapsed are added to ``name``."""
        if self.journal is not None:
            self.journal.emit("span_begin", span=name)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            stats = self._spans.setdefault(name, SpanStats())
            stats.wall_s += wall
            stats.cpu_s += cpu
            stats.calls += 1
            if self.journal is not None:
                self.journal.emit("span_end", span=name,
                                  wall_s=round(wall, 6), cpu_s=round(cpu, 6))

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a named counter (e.g. observations produced)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def merge(self, other: "PerfRegistry") -> None:
        """Fold another registry into this one (summing spans/counters).

        This is how worker-process telemetry survives the process
        boundary: each worker records into its own registry, pickles it
        back with the result, and the parent merges.  Merged ``cpu_s``
        sums across processes, so it can legitimately exceed the
        parent's wall time for the same phase on a multi-core run.
        """
        for name, stats in other._spans.items():
            self._spans.setdefault(name, SpanStats()).merge(stats)
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value

    def reset(self) -> None:
        """Drop every recorded span and counter."""
        self._spans.clear()
        self._counters.clear()

    # ---- reading ---------------------------------------------------------

    @property
    def spans(self) -> dict[str, SpanStats]:
        """A copy of the per-span statistics, keyed by span name."""
        return dict(self._spans)

    @property
    def counters(self) -> dict[str, int]:
        """A copy of the named counters."""
        return dict(self._counters)

    def wall_s(self, name: str) -> float:
        """Total wall time of a span (0.0 if it never ran)."""
        stats = self._spans.get(name)
        return stats.wall_s if stats is not None else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view: ``{"spans": {...}, "counters": {...}}``."""
        return {
            "spans": {name: stats.as_dict()
                      for name, stats in self._spans.items()},
            "counters": dict(self._counters),
        }

    def report(self) -> str:
        """Human-readable table, slowest phase first."""
        if not self._spans and not self._counters:
            return "perf: no spans recorded"
        lines = ["phase                         wall_s    cpu_s  calls"]
        ordered = sorted(self._spans.items(),
                         key=lambda item: item[1].wall_s, reverse=True)
        for name, stats in ordered:
            lines.append(f"{name:<28}{stats.wall_s:>8.3f} {stats.cpu_s:>8.3f}"
                         f" {stats.calls:>6d}")
        for name, value in sorted(self._counters.items()):
            lines.append(f"{name:<28}{value:>15d}")
        return "\n".join(lines)
