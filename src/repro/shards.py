"""Sharded on-disk series storage: the out-of-core trace backbone.

A city-scale trace (~1M VMs at 92 days of 1-minute readings) is half a
terabyte of float32 rows per series kind — far beyond what any single
process should materialise.  This module stores such a series as a
directory of fixed-size ``.npy`` *shards* (one per contiguous VM-row
range) plus a tiny ``shards.json`` index, and reads it back through
:class:`ShardedSeriesMap`: a lazy, read-only ``Mapping[vm_id, row]``
that memory-maps one shard at a time and can iterate bounded
``(vm_ids, rows)`` windows for the chunked analyses in
:mod:`repro.core.chunks`.

The writer half (:class:`ShardWriter`) is stream-oriented: callers
append row blocks as they are rendered and each filled shard is flushed
to disk immediately, so the writer's working set never exceeds one
shard regardless of the total VM count.  Writers always target a
staging directory (the :class:`~repro.cache.ArtifactCache` entry
protocol or a spill directory), so crash atomicity is inherited from
the entry-level atomic rename.

Every load verifies the store before serving from it: shard count,
per-shard header dtype/shape, and on-disk payload size must all match
the index.  A mismatch raises :class:`~repro.errors.TraceError`, which
the cache layer treats as a corrupt entry (evict + miss).

Self-healing extensions (see :mod:`repro.resilience`): every flushed
shard records a sha256 of its payload bytes in the index, so ``repro
cache verify`` can *deep*-check stores for silent corruption (structural
header/size checks stay the default load path — hashing half a terabyte
per warm city-tier load would defeat the cache).  Shard flushes retry
transient failures (ENOSPC bursts, injected ``shard.write`` faults)
under a bounded seeded-backoff policy before propagating — and a
propagated failure unwinds through the sink's ``abort``, removing the
staging directory so the store is never left torn.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from .errors import TraceError
from .resilience import RetryPolicy, failpoint
from .resilience.retry import call_with_retry

#: Rows per shard file.  At paper resolution (92 d / 1 min = 132480
#: points) one shard is ~2 GiB of float32 at 4096 rows; the default
#: keeps shards near 512 MiB so a windowed pass touches at most one
#: shard's pages at a time.
DEFAULT_SHARD_ROWS = 1024

#: Index file describing every sharded series kind inside a store dir.
SHARD_INDEX_NAME = "shards.json"

#: Row dtype of every shard (the dtype TraceDataset series use).
SHARD_DTYPE = np.float32


@dataclass(frozen=True)
class ShardLayout:
    """Shape of one sharded series kind: how rows map to shard files."""

    kind: str
    rows: int
    points: int
    shard_rows: int
    #: Per-shard sha256 hexdigests of the payload bytes, in shard order.
    #: Empty for stores written before checksums existed (loads stay
    #: structural; deep verification reports them as unverifiable).
    checksums: tuple[str, ...] = ()

    @property
    def n_shards(self) -> int:
        return (self.rows + self.shard_rows - 1) // self.shard_rows

    def shard_extent(self, index: int) -> tuple[int, int]:
        """The ``[start, stop)`` global row range of shard ``index``."""
        start = index * self.shard_rows
        return start, min(start + self.shard_rows, self.rows)

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "kind": self.kind, "rows": self.rows, "points": self.points,
            "shard_rows": self.shard_rows}
        if self.checksums:
            payload["checksums"] = list(self.checksums)
        return payload


def shard_path(root: Path, kind: str, index: int) -> Path:
    """The file holding shard ``index`` of series kind ``kind``."""
    return Path(root) / kind / f"shard-{index:05d}.npy"


def write_shard_index(root: Path, layouts: list[ShardLayout]) -> None:
    """Write ``shards.json`` describing every kind stored under ``root``."""
    payload = {
        "format": 1,
        "series": {layout.kind: layout.as_dict() for layout in layouts},
    }
    with (Path(root) / SHARD_INDEX_NAME).open("w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def read_shard_index(root: Path) -> dict[str, ShardLayout]:
    """Load and validate ``shards.json``; raises TraceError when absent
    or malformed."""
    index_path = Path(root) / SHARD_INDEX_NAME
    try:
        payload = json.loads(index_path.read_text())
    except FileNotFoundError:
        raise TraceError(f"no shard index at {index_path}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"unreadable shard index {index_path}: {exc}") \
            from exc
    layouts = {}
    for kind, entry in payload.get("series", {}).items():
        try:
            layout = ShardLayout(
                kind=kind, rows=int(entry["rows"]),
                points=int(entry["points"]),
                shard_rows=int(entry["shard_rows"]),
                checksums=tuple(str(c)
                                for c in entry.get("checksums", ())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(
                f"malformed shard index entry for {kind!r}") from exc
        if layout.checksums and len(layout.checksums) != layout.n_shards:
            raise TraceError(
                f"shard index for {kind!r} lists {len(layout.checksums)} "
                f"checksums for {layout.n_shards} shards")
        layouts[kind] = layout
    return layouts


class ShardWriter:
    """Streams row blocks of one series kind into shard files.

    Rows are buffered into a single preallocated shard-sized float32
    array; each time the buffer fills, one ``.npy`` shard lands on
    disk.  :meth:`finalize` flushes the tail shard and returns the
    resulting :class:`ShardLayout`.  The caller owns directory
    atomicity (write into a staging dir, rename at the end).
    """

    def __init__(self, root: Path, kind: str, points: int,
                 shard_rows: int = DEFAULT_SHARD_ROWS,
                 on_flush=None, retry: RetryPolicy | None = None,
                 on_retry=None) -> None:
        if points <= 0:
            raise TraceError(f"points must be positive, got {points}")
        if shard_rows <= 0:
            raise TraceError(f"shard_rows must be positive, got {shard_rows}")
        self.root = Path(root)
        self.kind = kind
        self.points = int(points)
        self.shard_rows = int(shard_rows)
        #: Optional callback ``(shard_index, rows, nbytes)`` per flush —
        #: the journal's ``chunk_spill`` hook.
        self.on_flush = on_flush
        #: Transient flush failures retry under this policy before
        #: propagating (and unwinding the owning sink's staging dir).
        self.retry = retry if retry is not None else RetryPolicy()
        #: Optional callback ``(shard_index, attempt, delay_s, exc)``
        #: per flush retry — the journal's ``io_retry`` hook.
        self.on_retry = on_retry
        self._dir = self.root / kind
        self._dir.mkdir(parents=True, exist_ok=True)
        self._buffer = np.empty((self.shard_rows, self.points),
                                dtype=SHARD_DTYPE)
        self._fill = 0
        self._rows = 0
        self._shards = 0
        self._checksums: list[str] = []
        self._finalized = False

    def append(self, rows: np.ndarray) -> None:
        """Buffer a ``(n, points)`` block, flushing filled shards."""
        if self._finalized:
            raise TraceError(f"shard writer for {self.kind!r} is finalized")
        block = np.asarray(rows)
        if block.ndim != 2 or block.shape[1] != self.points:
            raise TraceError(
                f"{self.kind} shard block has shape {block.shape}, expected "
                f"(*, {self.points})")
        offset = 0
        remaining = block.shape[0]
        while remaining:
            take = min(remaining, self.shard_rows - self._fill)
            self._buffer[self._fill:self._fill + take] = \
                block[offset:offset + take]
            self._fill += take
            offset += take
            remaining -= take
            if self._fill == self.shard_rows:
                self._flush()
        self._rows += block.shape[0]

    def _flush(self) -> None:
        if not self._fill:
            return
        path = shard_path(self.root, self.kind, self._shards)
        filled = self._buffer[:self._fill]
        # Hash the payload before writing: zero-copy over the contiguous
        # buffer slice, and the digest the index records is by
        # construction what a clean write put on disk.
        digest = hashlib.sha256(filled).hexdigest()

        def write() -> None:
            failpoint("shard.write", path.name)
            np.save(path, filled)

        def retried(attempt: int, delay_s: float, exc: BaseException) -> None:
            # A failed np.save can leave a torn partial file; remove it
            # so the retry starts from a clean slate.
            path.unlink(missing_ok=True)
            if self.on_retry is not None:
                self.on_retry(self._shards, attempt, delay_s, exc)

        try:
            call_with_retry(write, policy=self.retry,
                            token=f"{self.kind}/{self._shards}",
                            on_retry=retried)
        except BaseException:
            path.unlink(missing_ok=True)
            raise
        self._checksums.append(digest)
        if self.on_flush is not None:
            self.on_flush(self._shards, self._fill, int(filled.nbytes))
        self._shards += 1
        self._fill = 0

    def finalize(self) -> ShardLayout:
        """Flush the partial tail shard and seal the writer."""
        if not self._finalized:
            self._flush()
            self._finalized = True
        return ShardLayout(kind=self.kind, rows=self._rows,
                           points=self.points, shard_rows=self.shard_rows,
                           checksums=tuple(self._checksums))


def _verify_shard(path: Path, expected_rows: int, points: int,
                  checksum: str | None = None,
                  deep: bool = False) -> None:
    """Check one shard's header and payload size without loading it.

    With ``deep=True`` and a recorded ``checksum``, the payload bytes
    are additionally hashed and compared — the full-integrity pass
    behind ``repro cache verify`` (too expensive for the default load
    path at city scale).

    Raises:
        TraceError: missing file, wrong dtype/shape, truncation, or
            (deep only) a payload checksum mismatch.
    """
    failpoint("shard.read", path.name)
    try:
        with path.open("rb") as handle:
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_2_0(handle)
            else:
                raise ValueError(f"unsupported .npy version {version}")
            data_start = handle.tell()
    except FileNotFoundError:
        raise TraceError(f"missing shard {path.name}") from None
    except (OSError, ValueError) as exc:
        raise TraceError(f"unreadable shard {path.name}: {exc}") from exc
    if dtype != np.dtype(SHARD_DTYPE) or fortran:
        raise TraceError(
            f"shard {path.name}: dtype/layout mismatch (got {dtype})")
    if shape != (expected_rows, points):
        raise TraceError(
            f"shard {path.name}: shape {shape}, expected "
            f"({expected_rows}, {points})")
    expected_bytes = data_start + expected_rows * points * \
        np.dtype(SHARD_DTYPE).itemsize
    actual = path.stat().st_size
    if actual != expected_bytes:
        raise TraceError(
            f"shard {path.name}: {actual} bytes on disk, expected "
            f"{expected_bytes} (truncated or padded)")
    if deep and checksum:
        digest = hashlib.sha256()
        with path.open("rb") as handle:
            handle.seek(data_start)
            while True:
                chunk = handle.read(1 << 20)
                if not chunk:
                    break
                digest.update(chunk)
        if digest.hexdigest() != checksum:
            raise TraceError(
                f"shard {path.name}: payload checksum mismatch")


class ShardedSeriesMap(Mapping):
    """Read-only ``{vm_id: row}`` view over a sharded series store.

    ``__getitem__`` returns a float32 row *view* into the shard's
    memory map — the same contract as the monolithic mmap cache path —
    while keeping at most a small number of shard maps open.
    :meth:`iter_windows` is the bulk path: shard-bounded, zero-copy
    ``(vm_ids, rows)`` windows in trace order for the chunked analyses.
    """

    def __init__(self, root: Path, layout: ShardLayout,
                 order: list[str], index: dict[str, int] | None = None,
                 verify: bool = True) -> None:
        self.root = Path(root)
        self.layout = layout
        self._order = order
        if len(order) != layout.rows:
            raise TraceError(
                f"{layout.kind} store holds {layout.rows} rows for "
                f"{len(order)} VM ids")
        #: vm_id -> global row.  Shareable across kinds with one order.
        self._index = (index if index is not None
                       else {vm_id: i for i, vm_id in enumerate(order)})
        self._maps: dict[int, np.ndarray] = {}
        if verify:
            self.verify()

    def verify(self, deep: bool = False) -> None:
        """Validate every shard header/size against the layout.

        ``deep=True`` additionally hashes each shard's payload against
        the recorded checksum (when the index carries one).
        """
        checksums = self.layout.checksums
        for shard in range(self.layout.n_shards):
            start, stop = self.layout.shard_extent(shard)
            _verify_shard(shard_path(self.root, self.layout.kind, shard),
                          stop - start, self.layout.points,
                          checksum=(checksums[shard]
                                    if shard < len(checksums) else None),
                          deep=deep)

    def _shard(self, index: int) -> np.ndarray:
        cached = self._maps.get(index)
        if cached is None:
            cached = np.load(shard_path(self.root, self.layout.kind, index),
                             mmap_mode="r")
            start, stop = self.layout.shard_extent(index)
            if cached.shape != (stop - start, self.layout.points):
                raise TraceError(
                    f"{self.layout.kind} shard {index}: shape "
                    f"{cached.shape} does not match layout")
            self._maps[index] = cached
        return cached

    # ---- Mapping protocol ------------------------------------------------

    def __getitem__(self, vm_id: str) -> np.ndarray:
        row = self._index[vm_id]
        shard, offset = divmod(row, self.layout.shard_rows)
        return self._shard(shard)[offset]

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, vm_id: object) -> bool:
        return vm_id in self._index

    # ---- bulk access -----------------------------------------------------

    def iter_windows(self, rows: int | None = None,
                     ) -> Iterator[tuple[list[str], np.ndarray]]:
        """Yield ``(vm_ids, rows_2d)`` windows in trace order.

        Windows never cross a shard boundary, so each yielded 2-D array
        is a contiguous zero-copy slice of one shard's memory map.
        ``rows`` caps the window height (default: whole shards).
        """
        step = self.layout.shard_rows if rows is None \
            else min(int(rows), self.layout.shard_rows)
        if step <= 0:
            raise TraceError(f"window rows must be positive, got {rows}")
        for shard in range(self.layout.n_shards):
            start, stop = self.layout.shard_extent(shard)
            data = self._shard(shard)
            for lo in range(0, stop - start, step):
                hi = min(lo + step, stop - start)
                yield (self._order[start + lo:start + hi], data[lo:hi])


def load_sharded_series(root: Path, orders: dict[str, list[str]],
                        ) -> dict[str, ShardedSeriesMap]:
    """Open every kind in a store dir, sharing per-order row indexes.

    ``orders`` maps kind -> VM-id order; kinds present in the index but
    absent from ``orders`` are an inconsistency and raise.
    """
    layouts = read_shard_index(root)
    if set(layouts) != set(orders):
        raise TraceError(
            f"shard index kinds {sorted(layouts)} do not match expected "
            f"{sorted(orders)}")
    shared: dict[int, dict[str, int]] = {}
    maps = {}
    for kind, layout in layouts.items():
        order = orders[kind]
        index = shared.get(id(order))
        if index is None:
            index = {vm_id: i for i, vm_id in enumerate(order)}
            shared[id(order)] = index
        maps[kind] = ShardedSeriesMap(root, layout, order, index=index)
    return maps
