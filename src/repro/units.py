"""Unit helpers shared across the library.

The paper mixes units freely (ms RTTs, Mbps links, GB/month traffic, RMB
prices).  Internally the library standardises on:

* time:        **milliseconds** for latency, **seconds** for durations,
               **minutes** for trace timestamps;
* throughput:  **Mbps** (megabits per second);
* traffic:     **GB** (gigabytes, decimal);
* distance:    **kilometres**;
* money:       **RMB** (Chinese yuan).

This module provides explicit, named conversions so call sites never carry
bare magic constants.
"""

from __future__ import annotations

MS_PER_SECOND = 1_000.0
SECONDS_PER_MINUTE = 60.0
MINUTES_PER_HOUR = 60.0
HOURS_PER_DAY = 24.0
MINUTES_PER_DAY = MINUTES_PER_HOUR * HOURS_PER_DAY
DAYS_PER_MONTH = 30.0  # billing month used by every provider in Table 5

BITS_PER_BYTE = 8.0
MBIT = 1e6  # bits
GB = 1e9  # bytes

#: Speed of light in optical fibre, km per millisecond.  Light travels at
#: roughly 2/3 c in glass; 200 km/ms is the standard rule of thumb used in
#: WAN latency estimation.
FIBER_KM_PER_MS = 200.0

#: Routed fibre paths are longer than the geodesic ("path inflation",
#: Spring et al. 2003, cited by the paper as [85]).
PATH_INFLATION = 1.6


def ms_to_seconds(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / MS_PER_SECOND


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * MS_PER_SECOND


def mbps_to_bytes_per_second(mbps: float) -> float:
    """Convert a link rate in Mbps to bytes per second."""
    return mbps * MBIT / BITS_PER_BYTE


def bytes_to_gb(num_bytes: float) -> float:
    """Convert a byte count to decimal gigabytes."""
    return num_bytes / GB


def gb_to_bytes(gigabytes: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return gigabytes * GB


def mbps_for_seconds_to_gb(mbps: float, seconds: float) -> float:
    """Total traffic in GB moved by a flow at ``mbps`` for ``seconds``."""
    return bytes_to_gb(mbps_to_bytes_per_second(mbps) * seconds)


def transmission_delay_ms(payload_bytes: float, link_mbps: float) -> float:
    """Serialisation delay in ms for ``payload_bytes`` over ``link_mbps``.

    Raises:
        ValueError: if the link rate is not positive.
    """
    if link_mbps <= 0:
        raise ValueError(f"link rate must be positive, got {link_mbps}")
    return seconds_to_ms(payload_bytes / mbps_to_bytes_per_second(link_mbps))


def propagation_delay_ms(distance_km: float, inflation: float = PATH_INFLATION) -> float:
    """One-way propagation delay in ms over an inflated fibre path."""
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    return distance_km * inflation / FIBER_KM_PER_MS
