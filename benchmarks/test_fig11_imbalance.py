"""Figure 11: resource usage is highly unbalanced across machines/sites.

Paper (11 sampled Guangdong sites + the machines of one site): bandwidth
gaps up to 19.8x across machines of one site and 731x across sites;
P95-max CPU gap up to 8.7x across sites; up to 14x CPU across machines.
"""

from conftest import emit

from repro.core.balance import machine_imbalance, site_imbalance
from repro.core.report import check_ordering, comparison_block, format_table


def _busiest_province(dataset):
    counts = {}
    for vm in dataset.vms.values():
        counts.setdefault(vm.province, set()).add(vm.site_id)
    return max(counts, key=lambda p: len(counts[p]))


def _busiest_site(dataset, province):
    counts = {}
    for vm in dataset.vms.values():
        if vm.province == province:
            counts[vm.site_id] = counts.get(vm.site_id, 0) + 1
    return max(counts, key=counts.get)


def test_fig11_load_imbalance(benchmark, nep_dataset, study):
    province = _busiest_province(nep_dataset)
    site = _busiest_site(nep_dataset, province)
    rng = study.scenario.random.stream("fig11")

    def compute():
        return {
            "machines/cpu": machine_imbalance(nep_dataset, site, "cpu"),
            "machines/bw": machine_imbalance(nep_dataset, site, "bw"),
            "sites/cpu": site_imbalance(nep_dataset, province, "cpu",
                                        rng=rng),
            "sites/bw": site_imbalance(nep_dataset, province, "bw",
                                       rng=rng),
        }

    views = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        ("machines (one site) / cpu", "up to 14x",
         views["machines/cpu"].max_gap, len(views["machines/cpu"].unit_ids)),
        ("machines (one site) / bw", "up to 19.8x",
         views["machines/bw"].max_gap, len(views["machines/bw"].unit_ids)),
        ("sites (one province) / cpu", "up to 8.7x",
         views["sites/cpu"].max_gap, len(views["sites/cpu"].unit_ids)),
        ("sites (one province) / bw", "up to 731x",
         views["sites/bw"].max_gap, len(views["sites/bw"].unit_ids)),
    ]
    checks = [
        check_ordering("machine bandwidth usage skewed",
                       "max/min gap well above 1x",
                       views["machines/bw"].max_gap > 2.0,
                       f"{views['machines/bw'].max_gap:.1f}x"),
        check_ordering("site bandwidth usage highly skewed",
                       "gap across sites larger than across machines",
                       views["sites/bw"].max_gap
                       >= views["machines/bw"].max_gap,
                       f"{views['sites/bw'].max_gap:.0f}x vs "
                       f"{views['machines/bw'].max_gap:.1f}x"),
        check_ordering("site bandwidth gap is orders of magnitude",
                       "up to 731x in the paper",
                       views["sites/bw"].max_gap > 10.0,
                       f"{views['sites/bw'].max_gap:.0f}x"),
        check_ordering("site CPU usage skewed", "gap > 2x",
                       views["sites/cpu"].max_gap > 2.0,
                       f"{views['sites/cpu'].max_gap:.1f}x"),
    ]
    emit(format_table(["view", "paper gap", "measured gap", "units"],
                      rows,
                      title=f"Figure 11 — load imbalance "
                            f"({province}, site {site})"))
    emit(comparison_block("Figure 11 vs paper", checks))
    assert all(c.holds for c in checks)
