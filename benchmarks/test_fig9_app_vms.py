"""Figure 9: VMs per app — edge apps deploy more, CDN reaching ~1000.

Paper: 9.6% of NEP apps deploy >=50 VMs vs 6.1% on Azure; the largest
edge app (a CDN) runs ~1000 VMs.
"""

from conftest import emit

from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)
from repro.core.workload_analysis import app_vm_count_summary


def test_fig9_app_vm_counts(benchmark, nep_dataset, azure_dataset):
    def compute():
        return (app_vm_count_summary(nep_dataset),
                app_vm_count_summary(azure_dataset))

    nep, azure = benchmark(compute)

    rows = [
        ("share of apps >= 50 VMs", 0.096, nep.fraction_at_least_50,
         0.061, azure.fraction_at_least_50),
        ("largest app (VMs)", 1000, nep.max_vms, "-", azure.max_vms),
        ("median VMs per app", "-", nep.counts_cdf.median, "-",
         azure.counts_cdf.median),
    ]
    checks = [
        check_ratio("NEP share >=50 VMs", 0.096, nep.fraction_at_least_50,
                    tolerance=0.8),
        check_ordering("edge apps deploy more VMs than cloud apps",
                       "NEP share >= Azure share",
                       nep.fraction_at_least_50
                       >= azure.fraction_at_least_50,
                       f"{nep.fraction_at_least_50:.3f} vs "
                       f"{azure.fraction_at_least_50:.3f}"),
        check_ordering("a large CDN-style app exists",
                       "largest NEP app >= 100 VMs at this scale",
                       nep.max_vms >= 100, f"max = {nep.max_vms}"),
    ]
    emit(format_table(["metric", "paper NEP", "measured NEP",
                       "paper Azure", "measured Azure"], rows,
                      title="Figure 9 — per-app VM counts"))
    emit(comparison_block("Figure 9 vs paper", checks))
    assert all(c.holds for c in checks)
