"""Ablation: platform build-out as a driver of across-site skew (§4.3).

The paper's second explanation for site imbalance: "new sites are added
to NEP frequently ... this also explains why the resource usage skewness
is more severe across sites than servers".  Replays the build-out with
geo-scoped demand and compares it against a static (all-sites-on-day-one)
counterfactual.
"""

from conftest import emit

from repro.config import Scenario
from repro.core.report import check_ordering, comparison_block, format_table
from repro.platform.growth import simulate_growth

SCENARIO = Scenario.smoke_scale().with_overrides(seed=20211102)
EPOCHS = 6
REQUESTS = 12


def test_ablation_platform_growth(benchmark):
    def compute():
        grown = simulate_growth(SCENARIO, epochs=EPOCHS,
                                initial_fraction=0.2,
                                requests_per_epoch=REQUESTS)
        static = simulate_growth(SCENARIO, epochs=EPOCHS,
                                 initial_fraction=1.0,
                                 requests_per_epoch=REQUESTS)
        return grown, static

    grown, static = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [(e.index, e.active_sites, e.placed_vms, e.skew,
             static.epochs[e.index].skew)
            for e in grown.epochs]
    emit(format_table(
        ["epoch", "active sites", "VMs", "skew (growth)",
         "skew (static)"], rows,
        title="Ablation — build-out vs static deployment"))

    by_epoch = grown.rate_by_activation_epoch()
    emit(format_table(
        ["activation epoch", "mean final sales rate"],
        [(epoch, rate) for epoch, rate in by_epoch.items()],
        title="Sales rate by site age (growth run)"))

    first, last = by_epoch[0], by_epoch[max(by_epoch)]
    checks = [
        check_ordering("growth amplifies across-site skew",
                       "final skew above the static counterfactual",
                       grown.final_skew > static.final_skew,
                       f"{grown.final_skew:.0f}x vs "
                       f"{static.final_skew:.0f}x"),
        check_ordering("young sites sit near-empty",
                       "day-one sites outsell the newest cohort",
                       first > 3 * max(last, 1e-6),
                       f"{first:.4f} vs {last:.4f} mean sales rate"),
        check_ordering("skew grows while the platform builds out",
                       "later epochs more skewed than the first",
                       grown.epochs[-1].skew > grown.epochs[0].skew,
                       f"{grown.epochs[0].skew:.0f}x -> "
                       f"{grown.epochs[-1].skew:.0f}x"),
    ]
    emit(comparison_block("Growth ablation", checks))
    assert all(c.holds for c in checks)
