"""Ablation: platform build-out as a driver of across-site skew (§4.3).

The paper's second explanation for site imbalance: "new sites are added
to NEP frequently ... this also explains why the resource usage skewness
is more severe across sites than servers".  Replays the build-out with
geo-scoped demand and compares it against a static (all-sites-on-day-one)
counterfactual.

The computation lives in :func:`repro.core.ablations.run_growth_ablation`
and runs through the session ablation sweep (``sweeps/ablations.toml``);
this module renders the sweep cell's stored result.
"""

from conftest import emit


def test_ablation_platform_growth(benchmark, ablation_sweep):
    outcome = benchmark.pedantic(
        lambda: ablation_sweep.outcome("growth"), rounds=1, iterations=1)
    emit(outcome["text"])
    assert outcome["checks_ok"] == outcome["checks_total"]
