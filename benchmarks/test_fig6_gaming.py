"""Figure 6: cloud-gaming response delay across networks/devices/games.

Paper: edge backend ~91 ms vs ~145 ms on the farthest cloud; remote VMs
add up to ~60 ms; the server side (~70 ms) dominates; the high-end phone
is only slightly faster; Pingus is slower and jitterier.
"""

import numpy as np
from conftest import emit

from repro.core.qoe_analysis import GamingExperiment
from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)
from repro.netsim.access import AccessType


def test_fig6_cloud_gaming(benchmark, study):
    rng = study.scenario.random.stream("fig6")
    experiment = GamingExperiment(study.qoe_testbed, rng, trials=50)

    def compute():
        return {
            "networks": experiment.sweep_networks(),
            "devices": experiment.sweep_devices(),
            "games": experiment.sweep_games(),
        }

    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    by_vm = {(r.vm_label, r.access): r for r in sweeps["networks"]}
    edge = by_vm[("Edge", AccessType.WIFI)]
    far = by_vm[("Cloud-3", AccessType.WIFI)]

    rows = [(r.vm_label, r.access.value, r.mean_ms, r.p95_ms)
            for r in sweeps["networks"]]
    emit(format_table(["backend", "network", "mean delay (ms)",
                       "p95 (ms)"], rows,
                      title="Figure 6(a) — response delay by network"))

    device_rows = [(r.device_name, r.vm_label, r.mean_ms)
                   for r in sweeps["devices"] if r.vm_label == "Edge"]
    emit(format_table(["device", "backend", "mean delay (ms)"],
                      device_rows,
                      title="Figure 6(b) — devices (edge backend)"))

    game_rows = [(r.game_name, r.vm_label, r.mean_ms,
                  float(np.std(r.delays_ms)))
                 for r in sweeps["games"] if r.vm_label == "Edge"]
    emit(format_table(["game", "backend", "mean delay (ms)", "std (ms)"],
                      game_rows,
                      title="Figure 6(c) — games (edge backend)"))

    devices_edge = {r.device_name: r.mean_ms
                    for r in sweeps["devices"] if r.vm_label == "Edge"}
    games_edge = {r.game_name: r for r in sweeps["games"]
                  if r.vm_label == "Edge"}
    checks = [
        check_ratio("edge WiFi response delay", 91.0, edge.mean_ms,
                    tolerance=0.25),
        check_ratio("farthest-cloud WiFi delay", 145.0, far.mean_ms,
                    tolerance=0.25),
        check_ordering("remote clouds add up to ~60 ms",
                       "cloud-3 minus edge in 30-70 ms",
                       30 <= far.mean_ms - edge.mean_ms <= 70,
                       f"delta = {far.mean_ms - edge.mean_ms:.0f} ms"),
        check_ordering("server side dominates", "~70 ms of the total",
                       55 <= edge.breakdown["server_ms"] <= 85,
                       f"server = {edge.breakdown['server_ms']:.0f} ms"),
        check_ordering("Note 10+ fastest device, but not by much",
                       "within ~10 ms of the slowest phone",
                       devices_edge["Samsung Note 10+"]
                       == min(devices_edge.values())
                       and max(devices_edge.values())
                       - min(devices_edge.values()) < 15,
                       f"spread = {max(devices_edge.values()) - min(devices_edge.values()):.1f} ms"),
        check_ordering("Pingus slowest and jitteriest game",
                       "Pingus > Flare in mean and std",
                       games_edge["Pingus"].mean_ms
                       > games_edge["Flare"].mean_ms
                       and float(np.std(games_edge["Pingus"].delays_ms))
                       > float(np.std(games_edge["Flare"].delays_ms)),
                       "ordering holds"),
    ]
    emit(comparison_block("Figure 6 vs paper", checks))
    assert all(c.holds for c in checks)
