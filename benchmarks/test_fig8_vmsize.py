"""Figure 8: VM sizes — NEP subscribes far bigger VMs than Azure.

Paper: medians 8 vs 1 cores and 32 vs 4 GB; 90% of Azure VMs at <=4
vCPUs and ~70% at <=4 GB; NEP storage median/mean 100/650 GB.
"""

from conftest import emit

from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)
from repro.core.workload_analysis import vm_size_summary


def test_fig8_vm_sizes(benchmark, nep_dataset, azure_dataset):
    def compute():
        return vm_size_summary(nep_dataset), vm_size_summary(azure_dataset)

    nep, azure = benchmark(compute)

    rows = [
        ("median CPU cores", 8, nep.median_cpu, 1, azure.median_cpu),
        ("median memory GB", 32, nep.median_memory_gb, 4,
         azure.median_memory_gb),
        ("median disk GB", 100, nep.median_disk_gb, "n/a",
         azure.median_disk_gb),
        ("mean disk GB", 650, nep.mean_disk_gb, "n/a", azure.mean_disk_gb),
    ]
    azure_small_cpu = azure.cpu_cdf.fraction_below(4.0)
    azure_small_mem = azure.memory_cdf.fraction_below(4.0)
    checks = [
        check_ratio("NEP median cores", 8, nep.median_cpu, tolerance=0.5),
        check_ratio("NEP median memory GB", 32, nep.median_memory_gb,
                    tolerance=0.5),
        check_ratio("Azure median memory GB", 4, azure.median_memory_gb,
                    tolerance=0.5),
        check_ratio("Azure share <=4 vCPUs", 0.90, azure_small_cpu,
                    tolerance=0.12),
        check_ratio("Azure share <=4 GB", 0.70, azure_small_mem,
                    tolerance=0.2),
        check_ratio("NEP median disk GB", 100, nep.median_disk_gb,
                    tolerance=0.5),
        check_ratio("NEP mean disk GB", 650, nep.mean_disk_gb,
                    tolerance=0.6),
        check_ordering("NEP VMs bigger than Azure VMs",
                       "medians dominate on both axes",
                       nep.median_cpu > azure.median_cpu
                       and nep.median_memory_gb > azure.median_memory_gb,
                       f"{nep.median_cpu:.0f}C/{nep.median_memory_gb:.0f}G "
                       f"vs {azure.median_cpu:.0f}C/"
                       f"{azure.median_memory_gb:.0f}G"),
    ]
    emit(format_table(["metric", "paper NEP", "measured NEP",
                       "paper Azure", "measured Azure"], rows,
                      title="Figure 8 — VM sizes"))
    emit(comparison_block("Figure 8 vs paper", checks))
    assert all(c.holds for c in checks)
