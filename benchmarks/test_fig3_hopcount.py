"""Figure 3: hop counts between end devices and edge/cloud servers.

Paper: 5-12 hops (median ~8) to the nearest edge vs 10-16 to clouds —
far from the 1-2 hop MEC vision.
"""

from conftest import emit

from repro.core.latency_analysis import hop_count_cdf
from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)


def test_fig3_hop_counts(benchmark, per_user):
    def compute():
        return (hop_count_cdf(per_user, "nearest_edge"),
                hop_count_cdf(per_user, "nearest_cloud"))

    edge, cloud = benchmark(compute)

    rows = [
        ("nearest edge", "5-12", f"{edge.quantile(0.02):.0f}-"
                                 f"{edge.quantile(0.98):.0f}",
         8, edge.median),
        ("nearest cloud", "10-16", f"{cloud.quantile(0.02):.0f}-"
                                   f"{cloud.quantile(0.98):.0f}",
         13, cloud.median),
    ]
    checks = [
        check_ratio("edge median hops", 8, edge.median, tolerance=0.3),
        check_ratio("cloud median hops", 13, cloud.median, tolerance=0.4),
        check_ordering("cloud needs more hops than edge", "edge < cloud",
                       edge.median < cloud.median,
                       f"{edge.median:.0f} < {cloud.median:.0f}"),
        check_ordering("edge not at the 1-2 hop MEC vision",
                       "min edge hops >= 5",
                       edge.quantile(0.02) >= 4,
                       f"p2 = {edge.quantile(0.02):.0f}"),
    ]
    emit(format_table(["target", "paper range", "measured range",
                       "paper med", "measured med"], rows,
                      title="Figure 3 — hop counts"))
    emit(comparison_block("Figure 3 vs paper", checks))
    assert all(c.holds for c in checks)
