"""§4.1 (prose figure): sales-rate skew across sites and CPU-vs-memory.

Paper: the 95th-percentile CPU sales rate across sites is ~5x the 5th
percentile, and the median CPU sales rate is ~2x the memory sales rate.
"""

from conftest import emit

from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)
from repro.core.workload_analysis import sales_rate_summary


def test_sales_rate_skew(benchmark, study):
    def compute():
        return sales_rate_summary(study.nep.platform)

    summary = benchmark(compute)

    rows = [
        ("site CPU sales rate p95/p5", 5.0, summary.site_cpu_p95_over_p5),
        ("median CPU / median memory rate", 2.0,
         summary.cpu_over_memory_ratio),
        ("median site CPU sales rate", "-", summary.median_site_cpu_rate),
    ]
    checks = [
        # The absolute skew is scale-sensitive: with ~2 VMs per site the
        # 5th-percentile loaded site is almost empty.  Keep a loose band.
        check_ratio("site CPU p95/p5 skew", 5.0,
                    summary.site_cpu_p95_over_p5, tolerance=3.0),
        check_ordering("CPU more saturated than memory",
                       "median CPU rate ~2x memory rate",
                       summary.cpu_over_memory_ratio > 1.0,
                       f"{summary.cpu_over_memory_ratio:.2f}x"),
        check_ordering("sales rate geographically skewed",
                       "p95/p5 well above 1", summary.site_cpu_p95_over_p5 > 2,
                       f"{summary.site_cpu_p95_over_p5:.1f}x"),
    ]
    emit(format_table(["metric", "paper", "measured"], rows,
                      title="§4.1 — sales-rate skew"))
    emit(comparison_block("Sales rates vs paper", checks))
    assert all(c.holds for c in checks)
