"""Ablation: how site density drives the nearest-edge RTT (§3.1/§5).

The paper's implication — "NEP needs to deploy denser sites" — made
quantitative: sweep the deployment from cloud-like (12 sites) to beyond
NEP (1000 sites) and measure the median nearest-edge RTT for WiFi users.

The computation lives in :func:`repro.core.ablations.run_density_ablation`
and runs through the session ablation sweep (``sweeps/ablations.toml``);
this module renders the sweep cell's stored result.
"""

from conftest import emit


def test_ablation_site_density(benchmark, ablation_sweep):
    outcome = benchmark.pedantic(
        lambda: ablation_sweep.outcome("density"), rounds=1, iterations=1)
    emit(outcome["text"])
    assert outcome["checks_ok"] == outcome["checks_total"]
