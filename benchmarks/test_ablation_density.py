"""Ablation: how site density drives the nearest-edge RTT (§3.1/§5).

The paper's implication — "NEP needs to deploy denser sites" — made
quantitative: sweep the deployment from cloud-like (12 sites) to beyond
NEP (1000 sites) and measure the median nearest-edge RTT for WiFi users.
"""

import numpy as np
from conftest import emit

from repro.core.report import check_ordering, comparison_block, format_table
from repro.geo import CHINA_CITIES, place_edge_sites
from repro.netsim.latency import LatencyModel
from repro.netsim.access import AccessType
from repro.netsim.routing import TargetSiteSpec, UESpec, build_route

DENSITIES = (12, 60, 250, 520, 1000)
USERS = 40


def _median_nearest_rtt(site_count: int, rng) -> float:
    sites = place_edge_sites(site_count, rng)
    model = LatencyModel(rng)
    medians = []
    for _ in range(USERS):
        home = CHINA_CITIES[int(rng.integers(0, len(CHINA_CITIES)))]
        location = home.location.jitter(float(rng.uniform(-0.15, 0.15)),
                                        float(rng.uniform(-0.15, 0.15)))
        ue = UESpec("user", location, AccessType.WIFI)
        nearest = sorted(sites,
                         key=lambda s: s.location.distance_km(location))[:3]
        rtts = []
        for site in nearest:
            route = build_route(
                ue, TargetSiteSpec("edge", site.location, True), rng)
            rtts.append(float(model.sample_many(route, 10).mean()))
        medians.append(min(rtts))
    return float(np.median(medians))


def test_ablation_site_density(benchmark, study):
    rng = study.scenario.random.stream("ablation-density")

    def compute():
        return {count: _median_nearest_rtt(count, rng)
                for count in DENSITIES}

    rtts = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [(count, rtt) for count, rtt in rtts.items()]
    values = [rtts[c] for c in DENSITIES]
    checks = [
        check_ordering("denser deployment lowers the nearest-edge RTT",
                       "RTT non-increasing in site count (to noise)",
                       values[0] > values[-1]
                       and values[1] >= values[-1] - 1.0,
                       " -> ".join(f"{v:.1f}" for v in values)),
        check_ordering("cloud-like density cannot reach edge latency",
                       "12 sites >= 1.3x the RTT of 520 sites",
                       values[0] >= 1.3 * rtts[520],
                       f"{values[0]:.1f} vs {rtts[520]:.1f} ms"),
        check_ordering("diminishing returns past NEP's density",
                       "520 -> 1000 sites saves < 520's absolute RTT x25%",
                       rtts[520] - rtts[1000] < 0.25 * rtts[520],
                       f"saving {rtts[520] - rtts[1000]:.1f} ms"),
        check_ordering("even 1000 sites stay above the MEC vision",
                       "WiFi floor: access+metro ~ 12 ms",
                       rtts[1000] > 10.0, f"{rtts[1000]:.1f} ms"),
    ]
    emit(format_table(["sites", "median nearest-edge RTT (ms)"], rows,
                      title="Ablation — deployment density (WiFi)"))
    emit(comparison_block("Density ablation", checks))
    assert all(c.holds for c in checks)
