"""Table 6 (Appendix C): RTTs to the QoE testbed's four backend VMs.

Paper (ms): WiFi 11.4/16.6/40.9/55.1, LTE 22.2/25.6/54.6/63.2,
5G 18.1/22.8/49.5/60.8 for Edge/Cloud-1/Cloud-2/Cloud-3.
"""

from conftest import emit

from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)
from repro.measurement.qoe.testbed import PAPER_TABLE6_RTT_MS


def test_table6_testbed_rtts(benchmark, study):
    def compute():
        return study.qoe_testbed.rtt_table(pings=30)

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows, checks = [], []
    for access, paper_row in PAPER_TABLE6_RTT_MS.items():
        measured_row = table[access]
        for vm_label, paper_rtt in paper_row.items():
            rows.append((access.value, vm_label, paper_rtt,
                         measured_row[vm_label]))
            # Tolerance is wide: the paper's Cloud-1 RTTs (16.6 ms at
            # 670 km over WiFi, 25.6 ms over LTE) sit below the fibre
            # round-trip floor plus their own access latency, so exact
            # replication is not physically reachable; the monotone
            # shape is the claim.  Cloud-1 therefore gets extra slack.
            tolerance = 1.5 if vm_label == "Cloud-1" else 1.0
            checks.append(check_ratio(
                f"{access.value}/{vm_label} RTT", paper_rtt,
                measured_row[vm_label], tolerance=tolerance))
        ordered = [measured_row[vm] for vm in
                   ("Edge", "Cloud-1", "Cloud-2", "Cloud-3")]
        checks.append(check_ordering(
            f"{access.value}: RTT grows with backend distance",
            "Edge < Cloud-1 < Cloud-2 < Cloud-3",
            ordered == sorted(ordered), "monotone"))

    emit(format_table(["access", "backend", "paper RTT (ms)",
                       "measured RTT (ms)"], rows,
                      title="Table 6 — QoE testbed RTTs"))
    emit(comparison_block("Table 6 vs paper", checks))
    assert all(c.holds for c in checks)
