"""Figure 12: weekly-averaged bandwidth of sample VMs over the trace.

Paper: among 4 random VMs, two ("VM-1", "VM-2") swing dramatically and
unpredictably week over week while the others hold steady.
"""

import numpy as np
from conftest import emit

from repro.core.balance import weekly_bandwidth_view
from repro.core.report import check_ordering, comparison_block, format_table


def test_fig12_weekly_bandwidth(benchmark, nep_dataset):
    # Pick the VMs with the most and least weekly variability among a
    # deterministic sample, mirroring the paper's hand-picked quartet.
    sample = [v for v in nep_dataset.vm_ids()
              if nep_dataset.bw_series[v].mean() > 1.0][:200]

    def compute():
        view = weekly_bandwidth_view(nep_dataset, sample)
        ranked = sorted(sample, key=view.variability, reverse=True)
        chosen = ranked[:2] + ranked[-2:]
        return weekly_bandwidth_view(nep_dataset, chosen)

    view = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for i, vm_id in enumerate(view.vm_ids, start=1):
        weekly = view.weekly_mbps[vm_id]
        rows.append((f"VM-{i}", float(weekly.min()), float(weekly.max()),
                     view.variability(vm_id)))

    erratic = [view.variability(v) for v in view.vm_ids[:2]]
    steady = [view.variability(v) for v in view.vm_ids[2:]]
    checks = [
        check_ordering("some VMs vary dramatically week over week",
                       "erratic VMs exist (weekly CV > 0.3)",
                       min(erratic) > 0.3,
                       f"top-2 weekly CV = {erratic[0]:.2f}, "
                       f"{erratic[1]:.2f}"),
        check_ordering("other VMs hold steady",
                       "steady VMs exist (weekly CV < 0.2)",
                       max(steady) < 0.2,
                       f"bottom-2 weekly CV = {steady[0]:.2f}, "
                       f"{steady[1]:.2f}"),
        check_ordering("clear separation between the two groups",
                       ">=3x variability ratio",
                       min(erratic) > 3 * max(steady, default=1e-9),
                       f"{min(erratic):.2f} vs {max(steady):.2f}"),
    ]
    emit(format_table(["VM", "weekly min (Mbps)", "weekly max (Mbps)",
                       "weekly CV"], rows,
                      title="Figure 12 — weekly bandwidth of 4 VMs"))
    emit(comparison_block("Figure 12 vs paper", checks))
    assert all(c.holds for c in checks)
