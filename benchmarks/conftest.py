"""Shared state for the figure/table benchmarks.

Each benchmark module regenerates one table or figure of the paper from
the shared full-scale study, prints the measured values next to the
paper's, and times the analysis step with pytest-benchmark.  Expensive
inputs (platforms, traces, campaigns) are session-scoped so the suite
builds them once.
"""

from __future__ import annotations

import pytest

from repro import default_study


@pytest.fixture(scope="session")
def study():
    """The shared full-scale study used by every figure benchmark."""
    return default_study()


@pytest.fixture(scope="session")
def per_user(study):
    return study.per_user


@pytest.fixture(scope="session")
def nep_dataset(study):
    return study.nep.dataset


@pytest.fixture(scope="session")
def azure_dataset(study):
    return study.azure.dataset


def emit(text: str) -> None:
    """Print a figure's report block under pytest's -s / captured output."""
    print()
    print(text)
