"""Shared state for the figure/table benchmarks.

Each benchmark module regenerates one table or figure of the paper from
the shared full-scale study, prints the measured values next to the
paper's, and times the analysis step with pytest-benchmark.  Expensive
inputs (platforms, traces, campaigns) are session-scoped so the suite
builds them once — and persist across *invocations* through the
artifact cache: the ``study`` fixture reads/writes the cache rooted at
``$REPRO_BENCH_CACHE_DIR`` (default: the library cache at
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; set it to the empty string
to force cold rebuilds).

The six ablation modules no longer compute anything locally: a single
session-scoped sweep (``sweeps/ablations.toml``) regenerates the whole
ablation campaign through ``repro.sweep``, sharing the same artifact
cache, and each module renders its cell's stored result.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import study_for
from repro.cache import default_cache_dir
from repro.sweep import load_sweep_spec, run_sweep
from repro.sweep.runner import CELLS_DIR, RESULT_NAME

#: Environment override for the benchmarks' artifact-cache root.
#: Unset -> the library default; empty string -> caching disabled.
CACHE_ENV = "REPRO_BENCH_CACHE_DIR"

#: Sweep configs shipped with the benchmarks.
SWEEPS_DIR = Path(__file__).parent / "sweeps"


def bench_cache_dir() -> str | None:
    """The artifact-cache root benchmarks share (None = disabled)."""
    root = os.environ.get(CACHE_ENV)
    if root is not None:
        return root or None
    return str(default_cache_dir())


@pytest.fixture(scope="session")
def study():
    """The shared full-scale study used by every figure benchmark."""
    return study_for("default", cache_dir=bench_cache_dir())


@pytest.fixture(scope="session")
def per_user(study):
    return study.per_user


@pytest.fixture(scope="session")
def nep_dataset(study):
    return study.nep.dataset


@pytest.fixture(scope="session")
def azure_dataset(study):
    return study.azure.dataset


class AblationSweep:
    """Accessor over the session ablation sweep's output directory."""

    def __init__(self, out_dir: Path):
        self.out_dir = out_dir

    def outcome(self, cell: str) -> dict:
        """The stored ``AnalysisResult`` dict of one ablation cell."""
        result = json.loads(
            (self.out_dir / CELLS_DIR / cell / RESULT_NAME).read_text(
                encoding="utf-8"))
        assert result["status"] == "ok", \
            f"ablation cell {cell} failed: {result['error']}"
        [analysis] = result["analyses"]
        return analysis


@pytest.fixture(scope="session")
def ablation_sweep(tmp_path_factory) -> AblationSweep:
    """Run the whole ablation campaign once, through the orchestrator."""
    spec = load_sweep_spec(SWEEPS_DIR / "ablations.toml")
    out_dir = tmp_path_factory.mktemp("ablation-sweep")
    result = run_sweep(spec, out_dir, cache_dir=bench_cache_dir())
    assert result.ok, f"ablation sweep failed: {', '.join(result.failed)}"
    return AblationSweep(out_dir)


def emit(text: str) -> None:
    """Print a figure's report block under pytest's -s / captured output."""
    print()
    print(text)
