"""Figure 2(a): mean RTT CDFs from users to edge/cloud baselines.

Paper headline numbers (median, ms):

  WiFi: nearest edge 16.1 (nearest cloud 1.47x, all clouds 2.49x slower),
  LTE : nearest edge 37.6 (1.33x / 1.79x),
  5G  : nearest edge 10.4 (1.23x / 3.0x).
"""

from conftest import emit

from repro.core.latency_analysis import rtt_cdfs
from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
    sketch_cdf,
)
from repro.netsim.access import AccessType

PAPER_MEDIANS = {
    AccessType.WIFI: {"nearest_edge": 16.1, "nearest_cloud": 23.6,
                      "all_cloud": 40.0, "third_edge": 18.9},
    AccessType.LTE: {"nearest_edge": 37.6, "nearest_cloud": 50.0,
                     "all_cloud": 67.3},
    AccessType.FIVE_G: {"nearest_edge": 10.4, "nearest_cloud": 12.8,
                        "all_cloud": 31.2},
}


def test_fig2a_rtt_cdfs(benchmark, per_user):
    def compute():
        return {access: rtt_cdfs(per_user, access)
                for access in PAPER_MEDIANS}

    cdfs = benchmark(compute)

    rows = []
    checks = []
    for access, paper in PAPER_MEDIANS.items():
        for baseline, paper_median in paper.items():
            measured = cdfs[access][baseline].median
            rows.append((access.value, baseline, paper_median, measured))
            checks.append(check_ratio(
                f"{access.value}/{baseline} median RTT",
                paper_median, measured, tolerance=0.5))
        checks.append(check_ordering(
            f"{access.value}: edge < nearest cloud < all clouds",
            "monotone baselines",
            cdfs[access]["nearest_edge"].median
            < cdfs[access]["nearest_cloud"].median
            < cdfs[access]["all_cloud"].median,
            "measured medians are monotone"
            if cdfs[access]["nearest_edge"].median
            < cdfs[access]["nearest_cloud"].median
            < cdfs[access]["all_cloud"].median else "ordering broken",
        ))

    emit(format_table(["access", "baseline", "paper med (ms)",
                       "measured med (ms)"], rows,
                      title="Figure 2(a) — mean RTT medians"))
    for access in PAPER_MEDIANS:
        for name, cdf in cdfs[access].items():
            emit(sketch_cdf(cdf, label=f"{access.value}/{name}"))
    emit(comparison_block("Figure 2(a) vs paper", checks))
    assert all(c.holds for c in checks)
