"""Ablation: NEP's low-usage-first placement vs classic bin-packing.

§2 describes NEP's spreading policy; §4.1 blames large VMs for
fragmentation.  This ablation quantifies the trade-off: NEP's policy
balances server load but occupies more servers (worse consolidation)
than best-fit, with random placement as the null baseline.
"""

import numpy as np
from conftest import emit

from repro.config import Scenario
from repro.core.report import check_ordering, comparison_block, format_table
from repro.platform.nep import build_nep_platform
from repro.platform.placement import (
    BestFitPolicy,
    NepPlacementPolicy,
    RandomPolicy,
    SubscriptionRequest,
)
from repro.workload.subscription import sample_nep_spec

SCENARIO = Scenario.smoke_scale().with_overrides(nep_site_count=30)
REQUESTS = 40


def _run_policy(policy_factory):
    scenario = SCENARIO
    platform = build_nep_platform(scenario)
    rng = scenario.random.stream("ablation-placement")
    policy = policy_factory(rng)
    for index in range(REQUESTS):
        from repro.platform.entities import App, Customer
        customer = Customer(f"c{index}", f"cust-{index}")
        platform.register_customer(customer)
        platform.register_app(App(f"a{index}", customer.customer_id,
                                  "cdn", f"img{index}"))
        request = SubscriptionRequest(
            customer_id=customer.customer_id, app_id=f"a{index}",
            image_id=f"img{index}", spec=sample_nep_spec(rng),
            vm_count=int(rng.integers(2, 8)),
        )
        policy.place(platform, request)
    rates = np.array([s.cpu_sales_rate()
                      for s in platform.iter_servers()])
    used = int(np.count_nonzero(rates))
    loaded = rates[rates > 0]
    return {
        "servers_used": used,
        "load_std": float(loaded.std()),
        "max_load": float(loaded.max()),
        "vms": len(platform.vms),
    }


def test_ablation_placement_policies(benchmark):
    def compute():
        return {
            "nep-low-usage": _run_policy(lambda rng: NepPlacementPolicy()),
            "best-fit": _run_policy(lambda rng: BestFitPolicy()),
            "random": _run_policy(lambda rng: RandomPolicy(rng)),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [(name, r["vms"], r["servers_used"], r["load_std"],
             r["max_load"]) for name, r in results.items()]
    nep, best_fit = results["nep-low-usage"], results["best-fit"]
    checks = [
        check_ordering("NEP spreads load wider than best-fit",
                       "NEP uses more servers",
                       nep["servers_used"] > best_fit["servers_used"],
                       f"{nep['servers_used']} vs "
                       f"{best_fit['servers_used']} servers"),
        check_ordering("best-fit consolidates into hotter servers",
                       "best-fit max load above NEP's",
                       best_fit["max_load"] >= nep["max_load"],
                       f"{best_fit['max_load']:.2f} vs "
                       f"{nep['max_load']:.2f}"),
        check_ordering("NEP's loaded servers are more even",
                       "NEP per-server load std below best-fit's",
                       nep["load_std"] <= best_fit["load_std"],
                       f"{nep['load_std']:.3f} vs "
                       f"{best_fit['load_std']:.3f}"),
    ]
    emit(format_table(["policy", "VMs placed", "servers used",
                       "loaded-server std", "hottest server"], rows,
                      title="Ablation — placement policies"))
    emit(comparison_block("Placement ablation", checks))
    assert all(c.holds for c in checks)
