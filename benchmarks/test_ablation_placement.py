"""Ablation: NEP's low-usage-first placement vs classic bin-packing.

§2 describes NEP's spreading policy; §4.1 blames large VMs for
fragmentation.  This ablation quantifies the trade-off: NEP's policy
balances server load but occupies more servers (worse consolidation)
than best-fit, with random placement as the null baseline.

The computation lives in
:func:`repro.core.ablations.run_placement_ablation` and runs through
the session ablation sweep (``sweeps/ablations.toml``); this module
renders the sweep cell's stored result.
"""

from conftest import emit


def test_ablation_placement_policies(benchmark, ablation_sweep):
    outcome = benchmark.pedantic(
        lambda: ablation_sweep.outcome("placement"), rounds=1, iterations=1)
    emit(outcome["text"])
    assert outcome["checks_ok"] == outcome["checks_total"]
