"""Table 2: hop-level breakdown of end-to-end network delay.

Paper (shares of end-to-end RTT, nearest edge / nearest cloud):

  WiFi hop1: 44.2% / 30.1%   (the wireless hop dominates)
  LTE  hop2: 70.1% / 51.6%   (the cellular core dominates)
  5G first-3 total: 97.9% / 82.2%  (packet core hidden from ICMP)
"""

from conftest import emit

from repro.core.latency_analysis import hop_breakdown
from repro.core.report import check_ratio, comparison_block, format_table
from repro.netsim.access import AccessType

PAPER = {
    (AccessType.WIFI, "nearest_edge"): {"hop1": 0.442, "hop2": 0.103,
                                        "hop3": 0.151, "rest": 0.302},
    (AccessType.WIFI, "nearest_cloud"): {"hop1": 0.301, "rest": 0.525},
    (AccessType.LTE, "nearest_edge"): {"hop1": 0.102, "hop2": 0.701,
                                       "rest": 0.103},
    (AccessType.LTE, "nearest_cloud"): {"hop2": 0.516, "rest": 0.252},
    (AccessType.FIVE_G, "nearest_edge"): {"first3_total": 0.979},
    (AccessType.FIVE_G, "nearest_cloud"): {"first3_total": 0.822},
}


def test_table2_hop_breakdown(benchmark, per_user):
    def compute():
        return {key: hop_breakdown(per_user, key[0], key[1])
                for key in PAPER}

    breakdowns = benchmark(compute)

    rows, checks = [], []
    for (access, target), paper_fields in PAPER.items():
        b = breakdowns[(access, target)]
        measured = {"hop1": b.hop1, "hop2": b.hop2, "hop3": b.hop3,
                    "first3_total": b.first3_total, "rest": b.rest}
        for field, paper_value in paper_fields.items():
            value = measured[field]
            rows.append((access.value, target, field, paper_value,
                         value if value is not None else "hidden"))
            if value is not None:
                checks.append(check_ratio(
                    f"{access.value}/{target}/{field}",
                    paper_value, value, tolerance=0.6))

    emit(format_table(["access", "target", "hop", "paper share",
                       "measured share"], rows,
                      title="Table 2 — per-hop latency shares"))
    emit(comparison_block("Table 2 vs paper", checks))
    # 5G packet-core hops must be ICMP-hidden, as in the paper's trace.
    assert breakdowns[(AccessType.FIVE_G, "nearest_edge")].hop1 is None
    assert all(c.holds for c in checks)
