"""Figure 14: VM CPU usage prediction — edge VMs are easier to predict.

Paper: Holt-Winters hits 2.4% RMSE predicting max CPU on NEP vs 8.5% on
Azure; mean-CPU errors are small (<~2%) on both; LSTM behaves alike;
seasonality strengths average 0.42 (NEP) vs 0.26 (Azure).

This is the heaviest benchmark: per-VM model training.  LSTM runs on a
subsample to keep the wall time in tens of seconds.
"""

from conftest import emit

from repro.core.prediction_analysis import (
    PredictionComparison,
    run_prediction_study,
)
from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)

HW_SAMPLE = 24
LSTM_SAMPLE = 6


def test_fig14_prediction(benchmark, study, nep_dataset, azure_dataset):
    rng_edge = study.scenario.random.stream("fig14-edge")
    rng_cloud = study.scenario.random.stream("fig14-cloud")

    def compute():
        edge = run_prediction_study(nep_dataset, vm_sample=HW_SAMPLE,
                                    rng=rng_edge, lstm_epochs=20,
                                    lstm_sample=LSTM_SAMPLE)
        cloud = run_prediction_study(azure_dataset, vm_sample=HW_SAMPLE,
                                     rng=rng_cloud, lstm_epochs=20,
                                     lstm_sample=LSTM_SAMPLE)
        return PredictionComparison(edge=edge, cloud=cloud)

    comparison = benchmark.pedantic(compute, rounds=1, iterations=1)

    table = comparison.median_table()
    rows = []
    paper = {("holt-winters", "max"): (2.4, 8.5),
             ("holt-winters", "mean"): (1.5, 2.0),
             ("lstm", "max"): (3.0, 9.0),
             ("lstm", "mean"): (1.5, 2.0)}
    for key, (edge_median, cloud_median) in table.items():
        p_edge, p_cloud = paper.get(key, ("-", "-"))
        rows.append((key[0], key[1], p_edge, edge_median, p_cloud,
                     cloud_median))

    hw_max_edge, hw_max_cloud = table[("holt-winters", "max")]
    checks = [
        check_ordering("edge easier to predict on every (model, target)",
                       "all edge medians <= cloud medians",
                       comparison.edge_easier_to_predict,
                       "; ".join(f"{m}/{t}: {e:.1f} vs {c:.1f}"
                                 for (m, t), (e, c) in table.items())),
        check_ratio("Holt-Winters max-CPU RMSE on edge (%)", 2.4,
                    hw_max_edge, tolerance=1.5),
        check_ordering("cloud max-CPU clearly harder",
                       "cloud RMSE well above edge (8.5 vs 2.4)",
                       hw_max_cloud > 1.5 * hw_max_edge,
                       f"{hw_max_cloud:.1f} vs {hw_max_edge:.1f}"),
        check_ratio("edge seasonality strength", 0.42,
                    comparison.edge.mean_seasonality, tolerance=0.5),
        check_ratio("cloud seasonality strength", 0.26,
                    comparison.cloud.mean_seasonality, tolerance=0.6),
        check_ordering("edge more seasonal than cloud",
                       "0.42 vs 0.26 in the paper",
                       comparison.edge.mean_seasonality
                       > comparison.cloud.mean_seasonality,
                       f"{comparison.edge.mean_seasonality:.2f} vs "
                       f"{comparison.cloud.mean_seasonality:.2f}"),
    ]
    emit(format_table(["model", "target", "paper edge", "measured edge",
                       "paper cloud", "measured cloud"], rows,
                      title="Figure 14 — prediction RMSE medians (%)"))
    emit(comparison_block("Figure 14 vs paper", checks))
    assert all(c.holds for c in checks)
