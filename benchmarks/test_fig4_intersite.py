"""Figure 4: inter-site RTTs of the edge platform vs distance.

Paper: RTTs grow with distance and reach ~100 ms at 3000 km; on average
each site has 1.2 / 2.9 / 10.6 other sites within 5 / 10 / 20 ms.
"""

import numpy as np
from conftest import emit

from repro.core.latency_analysis import intersite_summary
from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)
from repro.core.stats import pearson_correlation


def test_fig4_intersite_rtts(benchmark, study):
    rng = study.scenario.random.stream("fig4")

    def compute():
        return intersite_summary(study.nep.platform, rng)

    summary = benchmark.pedantic(compute, rounds=1, iterations=1)

    far = summary.rtts_ms[summary.distances_km > 2800]
    corr = pearson_correlation(summary.distances_km, summary.rtts_ms)
    rows = [
        ("RTT at ~3000 km (ms)", 100.0, float(np.mean(far))),
        ("sites within 5 ms", 1.2, summary.mean_sites_within_5ms),
        ("sites within 10 ms", 2.9, summary.mean_sites_within_10ms),
        ("sites within 20 ms", 10.6, summary.mean_sites_within_20ms),
    ]
    checks = [
        check_ratio("RTT at 3000 km", 100.0, float(np.mean(far)),
                    tolerance=0.35),
        check_ratio("sites within 10 ms", 2.9,
                    summary.mean_sites_within_10ms, tolerance=1.5),
        check_ratio("sites within 20 ms", 10.6,
                    summary.mean_sites_within_20ms, tolerance=1.5),
        check_ordering("RTT grows with distance", "strong correlation",
                       corr > 0.8, f"pearson = {corr:.2f}"),
        check_ordering("proximity counts nested",
                       "within5 <= within10 <= within20",
                       summary.mean_sites_within_5ms
                       <= summary.mean_sites_within_10ms
                       <= summary.mean_sites_within_20ms,
                       "nested"),
    ]
    emit(format_table(["metric", "paper", "measured"], rows,
                      title="Figure 4 — inter-site RTTs"))
    emit(comparison_block("Figure 4 vs paper", checks))
    assert all(c.holds for c in checks)
