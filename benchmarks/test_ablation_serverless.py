"""Ablation: reserved IaaS VM vs serverless functions (§5 extension).

Sweeps an app's duty cycle (hours of real traffic per day) and finds
the crossover where FaaS stops being cheaper than the reserved VM —
plus the cold-start latency price §5 warns about.
"""

import numpy as np
from conftest import emit

from repro.core.report import check_ordering, comparison_block, format_table
from repro.platform.serverless import FunctionSpec, compare_vm_vs_faas

SPEC = FunctionSpec(name="api-backend", memory_mb=512, exec_ms=60.0,
                    cold_start_ms=450.0)
VM_MONTHLY_RMB = 260.0   # right-sized 2C/8G-class NEP VM
VM_CAPACITY_RPS = 50.0
DUTY_HOURS = (1, 3, 6, 12, 24)


def test_ablation_vm_vs_serverless(benchmark, study):
    rng = study.scenario.random.stream("ablation-faas")

    def compute():
        results = {}
        for hours in DUTY_HOURS:
            rate = np.zeros(48)
            windows = hours * 2  # half-hour windows
            rate[:windows] = 40.0
            results[hours] = compare_vm_vs_faas(
                rate, window_s=1800.0, spec=SPEC,
                vm_monthly_rmb=VM_MONTHLY_RMB,
                vm_capacity_rps=VM_CAPACITY_RPS, rng=rng)
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        (hours, VM_MONTHLY_RMB, r.faas_monthly_rmb,
         "FaaS" if r.faas_cheaper else "VM",
         r.faas_p95_latency_ms)
        for hours, r in results.items()
    ]
    faas_costs = [results[h].faas_monthly_rmb for h in DUTY_HOURS]
    checks = [
        check_ordering("FaaS cost scales with duty cycle",
                       "monotone in active hours",
                       faas_costs == sorted(faas_costs),
                       " -> ".join(f"{c:.0f}" for c in faas_costs)),
        check_ordering("bursty apps favour FaaS",
                       "1-3 active hours/day cheaper on FaaS",
                       results[1].faas_cheaper and results[3].faas_cheaper,
                       f"1h: {results[1].faas_monthly_rmb:.0f} RMB, "
                       f"3h: {results[3].faas_monthly_rmb:.0f} RMB vs "
                       f"VM {VM_MONTHLY_RMB:.0f}"),
        check_ordering("steady apps favour the reserved VM",
                       "24 active hours/day cheaper on the VM",
                       not results[24].faas_cheaper,
                       f"{results[24].faas_monthly_rmb:.0f} vs "
                       f"{VM_MONTHLY_RMB:.0f} RMB"),
    ]
    # §5's latency caveat shows up on sparse traffic: with invocations
    # minutes apart, every request lands on an expired pool.
    sparse = compare_vm_vs_faas(
        np.full(48, 0.002), window_s=1800.0, spec=SPEC,
        vm_monthly_rmb=VM_MONTHLY_RMB, vm_capacity_rps=VM_CAPACITY_RPS,
        rng=rng, keep_alive_s=300.0)
    checks.append(check_ordering(
        "cold starts poison sparse-traffic latency",
        "FaaS p95 >> warm execution time (§5 caveat)",
        sparse.faas_p95_latency_ms > 3 * SPEC.exec_ms,
        f"p95 = {sparse.faas_p95_latency_ms:.0f} ms vs "
        f"{SPEC.exec_ms:.0f} ms warm "
        f"({sparse.faas_cold_start_fraction:.0%} cold)"))
    emit(format_table(["active h/day", "VM (RMB/mo)", "FaaS (RMB/mo)",
                       "winner", "FaaS p95 (ms)"], rows,
                      title="Ablation — reserved VM vs serverless"))
    emit(comparison_block("Serverless ablation", checks))
    assert all(c.holds for c in checks)
