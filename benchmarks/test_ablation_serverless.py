"""Ablation: reserved IaaS VM vs serverless functions (§5 extension).

Sweeps an app's duty cycle (hours of real traffic per day) and finds
the crossover where FaaS stops being cheaper than the reserved VM —
plus the cold-start latency price §5 warns about.

The computation lives in
:func:`repro.core.ablations.run_serverless_ablation` and runs through
the session ablation sweep (``sweeps/ablations.toml``); this module
renders the sweep cell's stored result.
"""

from conftest import emit


def test_ablation_vm_vs_serverless(benchmark, ablation_sweep):
    outcome = benchmark.pedantic(
        lambda: ablation_sweep.outcome("serverless"), rounds=1,
        iterations=1)
    emit(outcome["text"])
    assert outcome["checks_ok"] == outcome["checks_total"]
