"""Figure 7: live-streaming delay across networks, resolution, transcode.

Paper: ~400 ms base delay with edges improving at most ~24% over the
farthest cloud; 720p saves ~67 ms over 1080p; transcoding adds ~400 ms
(~2x); a 2 MB jitter buffer pushes the delay toward 2 s and erases the
edge/cloud difference; network (~50 ms) is not the bottleneck.
"""

from conftest import emit

from repro.core.qoe_analysis import StreamingExperiment
from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)
from repro.netsim.access import AccessType


def test_fig7_live_streaming(benchmark, study):
    rng = study.scenario.random.stream("fig7")
    experiment = StreamingExperiment(study.qoe_testbed, rng, trials=50)

    def compute():
        return {
            "networks": experiment.sweep_networks(),
            "resolutions": experiment.sweep_resolutions(),
            "buffer": experiment.jitter_buffer_comparison(),
        }

    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [(r.vm_label, r.access.value,
             "trans" if r.transcode else "plain", r.mean_ms)
            for r in sweeps["networks"]]
    emit(format_table(["backend", "network", "mode", "mean delay (ms)"],
                      rows, title="Figure 7 — streaming delay"))

    plain = {(r.vm_label, r.access): r for r in sweeps["networks"]
             if not r.transcode}
    edge_5g = plain[("Edge", AccessType.FIVE_G)]
    far_5g = plain[("Cloud-3", AccessType.FIVE_G)]
    edge_wifi = plain[("Edge", AccessType.WIFI)]
    trans_edge = next(r for r in sweeps["networks"]
                      if r.transcode and r.vm_label == "Edge")
    hi, lo = sweeps["resolutions"]
    buffered = {(r.vm_label, r.jitter_buffer_mb): r
                for r in sweeps["buffer"]}

    reduction = 1 - edge_5g.mean_ms / far_5g.mean_ms
    buffer_gap = abs(buffered[("Cloud-3", 2.0)].mean_ms
                     - buffered[("Edge", 2.0)].mean_ms)
    plain_gap = (buffered[("Cloud-3", 0.0)].mean_ms
                 - buffered[("Edge", 0.0)].mean_ms)
    checks = [
        check_ratio("edge streaming delay (no buffer)", 400.0,
                    edge_wifi.mean_ms, tolerance=0.25),
        check_ordering("edge benefit modest (<=~24%)",
                       "5-30% vs farthest cloud",
                       0.05 <= reduction <= 0.32,
                       f"reduction = {reduction:.0%}"),
        check_ratio("720p saving vs 1080p (ms)", 67.0,
                    hi.mean_ms - lo.mean_ms, tolerance=0.7),
        check_ratio("transcode overhead (ms)", 400.0,
                    trans_edge.mean_ms - edge_wifi.mean_ms,
                    tolerance=0.35),
        check_ordering("2 MB jitter buffer -> ~2 s",
                       "buffered delay > 1.5 s",
                       buffered[("Edge", 2.0)].mean_ms > 1500,
                       f"{buffered[('Edge', 2.0)].mean_ms:.0f} ms"),
        check_ordering("buffer erases the edge/cloud difference",
                       "relative gap shrinks under buffering",
                       buffer_gap / buffered[("Edge", 2.0)].mean_ms
                       < plain_gap / buffered[("Edge", 0.0)].mean_ms,
                       f"gap {plain_gap:.0f} ms -> {buffer_gap:.0f} ms "
                       f"on a 4-5x larger base"),
        check_ratio("network stage (ms, edge)", 50.0,
                    edge_wifi.breakdown["network_ms"], tolerance=0.6),
        check_ratio("capture + ISP stage (ms)", 140.0,
                    edge_wifi.breakdown["capture_ms"], tolerance=0.3),
    ]
    emit(comparison_block("Figure 7 vs paper", checks))
    assert all(c.holds for c in checks)
