"""Figure 5: TCP throughput vs geographical distance per access type.

Paper: correlation with distance is negligible (|corr| < 0.2) for WiFi,
LTE, and the TDD-capped 5G uplink; significant (|corr| > 0.7) only for
5G downlink (mean 497 Mbps) and wired access (mean 480 Mbps).
"""

from conftest import emit

from repro.core.report import check_ordering, comparison_block, format_table
from repro.core.throughput_analysis import all_series
from repro.netsim.access import AccessType

#: (access, direction) -> does the paper call the correlation significant?
PAPER_SIGNIFICANT = {
    (AccessType.WIFI, "downlink"): False,
    (AccessType.WIFI, "uplink"): False,
    (AccessType.LTE, "downlink"): False,
    (AccessType.LTE, "uplink"): False,
    (AccessType.FIVE_G, "downlink"): True,
    (AccessType.FIVE_G, "uplink"): False,
    (AccessType.WIRED, "downlink"): True,
}


def test_fig5_throughput_vs_distance(benchmark, study):
    observations = study.throughput_results.throughput

    def compute():
        return {(s.access, s.direction): s for s in all_series(observations)}

    series = benchmark(compute)

    rows, checks = [], []
    for key, significant in PAPER_SIGNIFICANT.items():
        panel = series[key]
        rows.append((key[0].value, key[1], panel.mean_mbps,
                     panel.correlation,
                     "significant" if significant else "negligible"))
        if significant:
            holds = panel.correlation < -0.6
            expectation = "corr < -0.7 (distance matters)"
        else:
            holds = abs(panel.correlation) < 0.35
            expectation = "|corr| < 0.2 (capacity-limited)"
        checks.append(check_ordering(
            f"{key[0].value}/{key[1]} correlation class", expectation,
            holds, f"corr = {panel.correlation:+.2f}"))

    # The capacity story: 5G downlink and wired are the fast last miles.
    checks.append(check_ordering(
        "5G downlink much faster than WiFi/LTE", "~497 vs <100 Mbps",
        series[(AccessType.FIVE_G, "downlink")].mean_mbps
        > 2.5 * series[(AccessType.WIFI, "downlink")].mean_mbps,
        f"{series[(AccessType.FIVE_G, 'downlink')].mean_mbps:.0f} vs "
        f"{series[(AccessType.WIFI, 'downlink')].mean_mbps:.0f} Mbps"))

    emit(format_table(["access", "direction", "mean Mbps", "corr",
                       "paper class"], rows,
                      title="Figure 5 — throughput vs distance"))
    emit(comparison_block("Figure 5 vs paper", checks))
    assert all(c.holds for c in checks)
