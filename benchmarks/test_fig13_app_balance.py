"""Figure 13: cross-VM usage gap within one app's fleet.

Paper: 16.3% of NEP apps show a >50x P95/P5 gap in per-VM mean CPU vs
0.1% on Azure; zooming into one app, one VM runs above the 80% safety
threshold >33% of the time while others idle below 30%.
"""

import numpy as np
from conftest import emit

from repro.core.balance import (
    app_balance_summary,
    find_unbalanced_app,
    hottest_app_day_view,
)
from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)


def test_fig13_app_cross_vm_balance(benchmark, nep_dataset, azure_dataset):
    def compute():
        return (app_balance_summary(nep_dataset),
                app_balance_summary(azure_dataset))

    nep, azure = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        ("share of apps with >50x gap", 0.163, nep.fraction_above_50x,
         0.001, azure.fraction_above_50x),
        ("median gap", "-", nep.gaps_cdf.median, "-",
         azure.gaps_cdf.median),
        ("apps measured", "-", nep.app_count, "-", azure.app_count),
    ]
    checks = [
        check_ratio("NEP share of apps >50x gap", 0.163,
                    nep.fraction_above_50x, tolerance=0.7),
        check_ordering("Azure apps far better balanced",
                       "Azure share near zero",
                       azure.fraction_above_50x < 0.03,
                       f"{azure.fraction_above_50x:.3f}"),
        check_ordering("NEP much more unbalanced than Azure",
                       "NEP share >> Azure share",
                       nep.fraction_above_50x
                       > azure.fraction_above_50x + 0.05,
                       f"{nep.fraction_above_50x:.3f} vs "
                       f"{azure.fraction_above_50x:.3f}"),
    ]

    # Figure 13(b): the showcase app with one hot VM and idle peers.
    app_id = find_unbalanced_app(nep_dataset, min_vms=8)
    day_view = hottest_app_day_view(nep_dataset, app_id)
    means = {vm: float(series.mean()) for vm, series in day_view.items()}
    hottest = max(means, key=means.get)
    coldest = min(means, key=means.get)
    checks.append(check_ordering(
        "one VM hot while siblings idle (Fig 13(b))",
        "hottest VM >> coldest VM of the same app",
        means[hottest] > 5 * max(means[coldest], 1e-6),
        f"{means[hottest]:.2f} vs {means[coldest]:.3f} mean CPU"))

    emit(format_table(["metric", "paper NEP", "measured NEP",
                       "paper Azure", "measured Azure"], rows,
                      title="Figure 13(a) — per-app cross-VM gap"))
    emit(f"Figure 13(b): app {app_id}: {len(day_view)} VMs, day-0 mean "
         f"CPU spread {means[coldest]:.3f}..{means[hottest]:.2f}")
    emit(comparison_block("Figure 13 vs paper", checks))
    assert all(c.holds for c in checks)
