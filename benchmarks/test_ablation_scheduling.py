"""Ablation: nearest-site scheduling vs load-aware GSLB (§4.3).

The paper shows production customers' nearest-site routing leaves one
VM above the 80% safety threshold while siblings idle, and proposes
load-aware scheduling with a bounded detour.  This ablation measures
both the hotspot reduction and the detour cost on the simulated NEP.
"""

import numpy as np
from conftest import emit

from repro.core.report import check_ordering, comparison_block, format_table
from repro.geo import CHINA_CITIES
from repro.platform.scheduling import LoadAwareScheduler, NearestSiteScheduler

REQUESTS = 400


def test_ablation_request_scheduling(benchmark, study):
    platform = study.nep.platform
    dataset = study.nep.dataset
    app_id = max(dataset.app_ids_with_vms(),
                 key=lambda a: len(dataset.vms_of_app(a)))
    rng = study.scenario.random.stream("ablation-scheduling")

    def compute():
        nearest = NearestSiteScheduler()
        load_state = {vm.vm_id: 0.0
                      for vm in platform.vms_of_app(app_id)}
        gslb = LoadAwareScheduler(load=lambda v: load_state[v],
                                  detour_km=300.0, overload=0.8)
        nearest_hits: dict[str, int] = {}
        gslb_hits: dict[str, int] = {}
        nearest_km, gslb_km = [], []
        for _ in range(REQUESTS):
            user = CHINA_CITIES[
                int(rng.integers(0, len(CHINA_CITIES)))].location
            n = nearest.schedule(platform, app_id, user)
            nearest_hits[n.vm_id] = nearest_hits.get(n.vm_id, 0) + 1
            nearest_km.append(n.distance_km)
            g = gslb.schedule(platform, app_id, user)
            gslb_hits[g.vm_id] = gslb_hits.get(g.vm_id, 0) + 1
            gslb_km.append(g.distance_km)
            load_state[g.vm_id] += 1.0 / REQUESTS * 10
        return nearest_hits, gslb_hits, nearest_km, gslb_km

    nearest_hits, gslb_hits, nearest_km, gslb_km = benchmark.pedantic(
        compute, rounds=1, iterations=1)

    hotspot_nearest = max(nearest_hits.values())
    hotspot_gslb = max(gslb_hits.values())
    detour = float(np.mean(gslb_km)) - float(np.mean(nearest_km))
    rows = [
        ("hottest VM (requests)", hotspot_nearest, hotspot_gslb),
        ("VMs serving traffic", len(nearest_hits), len(gslb_hits)),
        ("mean user-VM distance (km)", float(np.mean(nearest_km)),
         float(np.mean(gslb_km))),
    ]
    checks = [
        check_ordering("GSLB flattens the hotspot",
                       "hottest VM serves far fewer requests",
                       hotspot_gslb < 0.6 * hotspot_nearest,
                       f"{hotspot_nearest} -> {hotspot_gslb}"),
        check_ordering("GSLB engages more of the fleet",
                       "more VMs serve traffic",
                       len(gslb_hits) > len(nearest_hits),
                       f"{len(nearest_hits)} -> {len(gslb_hits)}"),
        check_ordering("the detour stays bounded",
                       "mean extra distance under the 300 km budget",
                       0 <= detour <= 300.0,
                       f"+{detour:.0f} km on average"),
    ]
    emit(format_table(["metric", "nearest-site", "load-aware GSLB"], rows,
                      title=f"Ablation — request scheduling "
                            f"(app {app_id})"))
    emit(comparison_block("Scheduling ablation", checks))
    assert all(c.holds for c in checks)
