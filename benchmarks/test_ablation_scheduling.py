"""Ablation: nearest-site scheduling vs load-aware GSLB (§4.3).

The paper shows production customers' nearest-site routing leaves one
VM above the 80% safety threshold while siblings idle, and proposes
load-aware scheduling with a bounded detour.  This ablation measures
both the hotspot reduction and the detour cost on the simulated NEP.

The computation lives in
:func:`repro.core.ablations.run_scheduling_ablation` and runs through
the session ablation sweep (``sweeps/ablations.toml``); this module
renders the sweep cell's stored result.
"""

from conftest import emit


def test_ablation_request_scheduling(benchmark, ablation_sweep):
    outcome = benchmark.pedantic(
        lambda: ablation_sweep.outcome("scheduling"), rounds=1,
        iterations=1)
    emit(outcome["text"])
    assert outcome["checks_ok"] == outcome["checks_total"]
