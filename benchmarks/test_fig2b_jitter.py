"""Figure 2(b): RTT coefficient-of-variation CDFs (network jitter).

Paper: median RTT CV for the nearest edge is 1.1%/2.3%/0.7% under
WiFi/LTE/5G; the nearest cloud is ~4-6x higher, and the all-cloud
average can reach ~30x.
"""

from conftest import emit

from repro.core.latency_analysis import cv_cdfs
from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)
from repro.netsim.access import AccessType

PAPER_EDGE_CV = {AccessType.WIFI: 0.011, AccessType.LTE: 0.023,
                 AccessType.FIVE_G: 0.007}
PAPER_CLOUD_RATIO = {AccessType.WIFI: 5.8, AccessType.LTE: 3.9,
                     AccessType.FIVE_G: 5.7}


def test_fig2b_rtt_cv_cdfs(benchmark, per_user):
    def compute():
        return {access: cv_cdfs(per_user, access)
                for access in PAPER_EDGE_CV}

    cdfs = benchmark(compute)

    rows, checks = [], []
    for access in PAPER_EDGE_CV:
        edge_cv = cdfs[access]["nearest_edge"].median
        cloud_cv = cdfs[access]["nearest_cloud"].median
        all_cv = cdfs[access]["all_cloud"].median
        ratio = cloud_cv / max(edge_cv, 1e-9)
        rows.append((access.value, PAPER_EDGE_CV[access], edge_cv,
                     PAPER_CLOUD_RATIO[access], ratio))
        checks.append(check_ratio(
            f"{access.value} nearest-edge median CV",
            PAPER_EDGE_CV[access], edge_cv, tolerance=1.5))
        checks.append(check_ordering(
            f"{access.value}: cloud jitter > edge jitter",
            "cloud CV exceeds edge CV",
            cloud_cv > edge_cv and all_cv > edge_cv,
            f"edge {edge_cv:.4f} < cloud {cloud_cv:.4f} < all {all_cv:.4f}"
            if cloud_cv > edge_cv else "ordering broken",
        ))

    emit(format_table(
        ["access", "paper edge CV", "measured edge CV",
         "paper cloud/edge", "measured cloud/edge"],
        rows, title="Figure 2(b) — RTT jitter (CV)"))
    emit(comparison_block("Figure 2(b) vs paper", checks))
    assert all(c.holds for c in checks)
