"""Figure 10: CPU utilisation — NEP lower but more variable than Azure.

Paper: 74% of NEP VMs average <10% CPU vs 47% on Azure (~6x lower mean
usage); across-time CV medians 0.48 vs 0.24.
"""

from conftest import emit

from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
    sketch_cdf,
)
from repro.core.workload_analysis import cpu_utilization_summary


def test_fig10_cpu_utilization(benchmark, nep_dataset, azure_dataset):
    def compute():
        return (cpu_utilization_summary(nep_dataset),
                cpu_utilization_summary(azure_dataset))

    nep, azure = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        ("share of VMs <10% mean CPU", 0.74, nep.fraction_mean_below_10pct,
         0.47, azure.fraction_mean_below_10pct),
        ("median across-time CV", 0.48, nep.median_cv, 0.24,
         azure.median_cv),
        ("overall mean utilisation", "-", nep.overall_mean_utilization,
         "-", azure.overall_mean_utilization),
    ]
    checks = [
        check_ratio("NEP share <10%", 0.74, nep.fraction_mean_below_10pct,
                    tolerance=0.15),
        check_ratio("Azure share <10%", 0.47,
                    azure.fraction_mean_below_10pct, tolerance=0.35),
        check_ratio("NEP median CV", 0.48, nep.median_cv, tolerance=0.3),
        check_ratio("Azure median CV", 0.24, azure.median_cv,
                    tolerance=0.4),
        check_ordering("NEP less utilised than Azure",
                       "NEP mean usage below Azure's",
                       nep.overall_mean_utilization
                       < azure.overall_mean_utilization,
                       f"{nep.overall_mean_utilization:.3f} vs "
                       f"{azure.overall_mean_utilization:.3f}"),
        check_ordering("NEP usage more variable across time",
                       "NEP median CV above Azure's",
                       nep.median_cv > azure.median_cv,
                       f"{nep.median_cv:.2f} vs {azure.median_cv:.2f}"),
    ]
    emit(format_table(["metric", "paper NEP", "measured NEP",
                       "paper Azure", "measured Azure"], rows,
                      title="Figure 10 — CPU utilisation"))
    emit(sketch_cdf(nep.mean_cdf, label="NEP mean-CPU CDF"))
    emit(sketch_cdf(azure.mean_cdf, label="Azure mean-CPU CDF"))
    emit(sketch_cdf(nep.p95_max_cdf, label="NEP P95-max CDF"))
    emit(comparison_block("Figure 10 vs paper", checks))
    assert all(c.holds for c in checks)
