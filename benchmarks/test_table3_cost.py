"""Table 3: monetary cost of the 50 heaviest apps, NEP vs virtual clouds.

Paper (cost normalised to NEP):

  vCloud-1: by-bandwidth mean 1.82x / median 1.21x,
            by-quantity mean 2.76x, pre-reserved mean 4.93x.
  vCloud-2: 1.76x / 1.25x, 2.66x, 4.82x.

Plus: network is 76% of the NEP bill on average (up to 96%), and the
average saving vs on-demand-by-bandwidth is ~45%/43%.
"""

from conftest import emit

from repro.billing.cloud import NetworkModel
from repro.core.cost_analysis import run_cost_study
from repro.core.report import (
    check_ordering,
    check_ratio,
    comparison_block,
    format_table,
)

PAPER_MEANS = {
    "vCloud-1": {NetworkModel.ON_DEMAND_BANDWIDTH: 1.82,
                 NetworkModel.ON_DEMAND_QUANTITY: 2.76,
                 NetworkModel.PRE_RESERVED: 4.93},
    "vCloud-2": {NetworkModel.ON_DEMAND_BANDWIDTH: 1.76,
                 NetworkModel.ON_DEMAND_QUANTITY: 2.66,
                 NetworkModel.PRE_RESERVED: 4.82},
}


def test_table3_monetary_cost(benchmark, study, nep_dataset):
    def compute():
        return {
            "vCloud-1": run_cost_study(
                nep_dataset, study.vcloud1, study.vcloud_regions,
                study.nep_billing,
                app_count=study.scenario.heaviest_app_count),
            "vCloud-2": run_cost_study(
                nep_dataset, study.vcloud2, study.vcloud_regions,
                study.nep_billing,
                app_count=study.scenario.heaviest_app_count),
        }

    studies = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows, checks = [], []
    for cloud_name, paper_means in PAPER_MEANS.items():
        result = studies[cloud_name]
        for model, paper_mean in paper_means.items():
            summary = result.summary(model)
            rows.append((cloud_name, model.value, paper_mean,
                         summary["mean"], summary["median"],
                         f"{summary['min']:.2f}-{summary['max']:.2f}"))
            checks.append(check_ratio(
                f"{cloud_name}/{model.value} mean ratio", paper_mean,
                summary["mean"], tolerance=0.6))
        means = {m: result.summary(m)["mean"] for m in NetworkModel}
        checks.append(check_ordering(
            f"{cloud_name}: billing-model ordering",
            "by-bandwidth < by-quantity and < pre-reserved",
            means[NetworkModel.ON_DEMAND_BANDWIDTH]
            <= means[NetworkModel.ON_DEMAND_QUANTITY]
            and means[NetworkModel.ON_DEMAND_BANDWIDTH]
            <= means[NetworkModel.PRE_RESERVED],
            " / ".join(f"{m.value}={v:.2f}" for m, v in means.items())))

    vcloud1 = studies["vCloud-1"]
    shares = vcloud1.network_share_of_nep_cost()
    checks.extend([
        check_ratio("network share of NEP cost (mean)", 0.76,
                    shares["mean"], tolerance=0.25),
        check_ratio("network share of NEP cost (max)", 0.96,
                    shares["max"], tolerance=0.1),
        check_ratio("mean saving vs vCloud-1 by-bandwidth", 0.45,
                    vcloud1.mean_saving_by_bandwidth, tolerance=0.5),
        check_ordering("a few apps are cheaper on the cloud",
                       "min by-bandwidth ratio can dip below ~1",
                       vcloud1.summary(
                           NetworkModel.ON_DEMAND_BANDWIDTH)["min"] < 1.4,
                       f"min = {vcloud1.summary(NetworkModel.ON_DEMAND_BANDWIDTH)['min']:.2f}"),
    ])

    emit(format_table(["cloud", "network model", "paper mean",
                       "measured mean", "measured median",
                       "measured range"], rows,
                      title="Table 3 — cost ratios (cloud / NEP)"))
    emit(comparison_block("Table 3 vs paper", checks))
    assert all(c.holds for c in checks)
