"""Table 1: deployment density of clouds and edges.

Regenerates the density column of Table 1 from region counts and land
areas, and checks the simulated NEP build lands at the paper's >135
regions per million square miles.
"""

from conftest import emit

from repro.core.deployment import (
    PAPER_DENSITIES,
    PLATFORM_DEPLOYMENTS,
    density_of,
    simulated_nep_density,
)
from repro.core.report import check_ratio, comparison_block, format_table


def _compute_table():
    return [(r.platform, r.regions, r.coverage, density_of(r))
            for r in PLATFORM_DEPLOYMENTS]


def test_table1_deployment_density(benchmark, study):
    rows = benchmark(_compute_table)
    emit(format_table(
        ["platform", "regions", "coverage", "density /10^6 mi^2"],
        rows, title="Table 1 — deployment density"))

    checks = [
        check_ratio(f"density({name})", paper, density_of(record),
                    tolerance=0.1)
        for name, paper in PAPER_DENSITIES.items()
        for record in PLATFORM_DEPLOYMENTS if record.platform == name
    ]
    simulated = simulated_nep_density(study.nep.platform)
    checks.append(check_ratio("simulated NEP density", 135.0, simulated,
                              tolerance=0.25))
    emit(comparison_block("Table 1 vs paper", checks))
    assert all(c.holds for c in checks)
