"""Ablation: today's NEP vs the MEC vision (§3.1 implications, §5).

The paper finds NEP's nearest edge is still 5-12 hops away and cannot
meet cloud-VR (5-20 ms) or auto-driving (10 ms) budgets, and prescribes
sinking resources "into the ISP's core networks or even cellular base
stations".  This ablation deploys a hypothetical MEC server co-located
with the access network and measures what that buys per access type.

The computation lives in :func:`repro.core.ablations.run_mec_ablation`
and runs through the session ablation sweep (``sweeps/ablations.toml``);
this module renders the sweep cell's stored result.
"""

from conftest import emit


def test_ablation_mec_deployment(benchmark, ablation_sweep):
    outcome = benchmark.pedantic(
        lambda: ablation_sweep.outcome("mec"), rounds=1, iterations=1)
    emit(outcome["text"])
    assert outcome["checks_ok"] == outcome["checks_total"]
