"""Ablation: today's NEP vs the MEC vision (§3.1 implications, §5).

The paper finds NEP's nearest edge is still 5-12 hops away and cannot
meet cloud-VR (5-20 ms) or auto-driving (10 ms) budgets, and prescribes
sinking resources "into the ISP's core networks or even cellular base
stations".  This ablation deploys a hypothetical MEC server co-located
with the access network and measures what that buys per access type.
"""

import numpy as np
from conftest import emit

from repro.core.report import check_ordering, comparison_block, format_table
from repro.geo import CHINA_CITIES
from repro.netsim.access import AccessType
from repro.netsim.latency import LatencyModel
from repro.netsim.routing import TargetSiteSpec, UESpec, build_route

USERS = 30
AUTO_DRIVING_BUDGET_MS = 10.0  # 5GAA requirement the paper cites


def _median_rtts(study, access, rng):
    """(median nearest-NEP RTT, median MEC RTT) for one access type."""
    platform = study.nep.platform
    model = LatencyModel(rng)
    nep_rtts, mec_rtts = [], []
    for _ in range(USERS):
        home = CHINA_CITIES[int(rng.integers(0, len(CHINA_CITIES)))]
        location = home.location.jitter(float(rng.uniform(-0.1, 0.1)),
                                        float(rng.uniform(-0.1, 0.1)))
        ue = UESpec("user", location, access)
        best = None
        for site in platform.nearest_sites(location, count=3):
            route = build_route(
                ue, TargetSiteSpec(site.site_id, site.location, True), rng)
            rtt = float(model.sample_many(route, 10).mean())
            best = rtt if best is None else min(best, rtt)
        nep_rtts.append(best)
        mec_route = build_route(
            ue, TargetSiteSpec("mec", location, True,
                               colocated_with_access=True), rng)
        mec_rtts.append(float(model.sample_many(mec_route, 10).mean()))
    return float(np.median(nep_rtts)), float(np.median(mec_rtts))


def test_ablation_mec_deployment(benchmark, study):
    rng = study.scenario.random.stream("ablation-mec")

    def compute():
        return {access: _median_rtts(study, access, rng)
                for access in (AccessType.WIFI, AccessType.LTE,
                               AccessType.FIVE_G)}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [(access.value, nep, mec, nep - mec,
             "yes" if mec <= AUTO_DRIVING_BUDGET_MS else "no")
            for access, (nep, mec) in results.items()]
    wifi_nep, wifi_mec = results[AccessType.WIFI]
    lte_nep, lte_mec = results[AccessType.LTE]
    five_g_nep, five_g_mec = results[AccessType.FIVE_G]
    checks = [
        check_ordering("today's NEP misses the 10 ms auto-driving budget",
                       "nearest NEP > 10 ms on every access",
                       all(nep > AUTO_DRIVING_BUDGET_MS
                           for nep, _ in results.values()),
                       " / ".join(f"{a.value}: {nep:.1f} ms"
                                  for a, (nep, _) in results.items())),
        check_ordering("MEC strictly improves on NEP",
                       "co-located server faster everywhere",
                       all(mec < nep for nep, mec in results.values()),
                       " / ".join(f"{a.value}: -{nep - mec:.1f} ms"
                                  for a, (nep, mec) in results.items())),
        check_ordering("WiFi gains the most from MEC",
                       "metro core removed (~40% of WiFi RTT)",
                       (wifi_nep - wifi_mec) > (five_g_nep - five_g_mec),
                       f"WiFi -{wifi_nep - wifi_mec:.1f} ms vs 5G "
                       f"-{five_g_nep - five_g_mec:.1f} ms"),
        check_ordering("LTE stays above the budget even with MEC",
                       "the 26 ms packet core is the floor",
                       lte_mec > AUTO_DRIVING_BUDGET_MS,
                       f"{lte_mec:.1f} ms"),
        check_ordering("MEC approaches the budget on WiFi/5G",
                       "within ~2 ms of the 10 ms line",
                       wifi_mec <= 12.0 and five_g_mec <= 12.0,
                       f"WiFi {wifi_mec:.1f} / 5G {five_g_mec:.1f} ms"),
    ]
    emit(format_table(["access", "nearest NEP (ms)", "MEC (ms)",
                       "saving (ms)", "meets 10 ms budget"], rows,
                      title="Ablation — NEP today vs the MEC vision"))
    emit(comparison_block("MEC ablation", checks))
    assert all(c.holds for c in checks)
