#!/usr/bin/env python
"""SIGKILL a study mid-run, resume it, and verify committed phases skip.

The CI gate behind ``repro run --resume``: every committed phase is an
atomically-published cache entry, so a run killed without warning can be
resumed from its last checkpoint.  The probe:

1. launches ``repro run`` as a child process and SIGKILLs it the moment
   the first phase commits to the artifact cache — no graceful
   shutdown, no atexit hooks;
2. re-runs the same invocation with ``--resume`` and asserts it exits 0;
3. checks the resume journal: a ``resume`` event names the committed
   phases, each of them is served as a ``cache_hit`` (never re-stored),
   and the remaining phases are generated and committed.

Usage::

    PYTHONPATH=src python scripts/study_resume_probe.py --jobs 2
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def child_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return env


def committed_entries(cache: Path) -> list[Path]:
    """Published cache entries (staging dirs have no meta.json yet)."""
    if not cache.exists():
        return []
    return sorted(p for p in cache.rglob("meta.json")
                  if ".tmp-" not in str(p.parent))


def kill_after_first_commit(argv: list[str], cache: Path,
                            timeout_s: float) -> int:
    proc = subprocess.Popen(argv, env=child_env(),
                            stdout=subprocess.DEVNULL)
    try:
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            if proc.poll() is not None or committed_entries(cache):
                break
            time.sleep(0.02)
        if proc.poll() is not None:
            raise SystemExit("probe: run finished before it could be "
                             "killed; use a larger scale")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    count = len(committed_entries(cache))
    if not count:
        raise SystemExit("probe: no phase committed before the kill")
    return count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments", nargs="*",
                        default=["fig2a", "fig9", "table3"],
                        help="experiments to run "
                             "(default: fig2a fig9 table3)")
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to wait for the first commit")
    args = parser.parse_args(argv)

    from repro.obs import read_journal

    with tempfile.TemporaryDirectory(prefix="resume-probe-") as tmp:
        root = Path(tmp)
        cache = root / "cache"
        base = [sys.executable, "-m", "repro", "run", *args.experiments,
                "--scale", args.scale, "--jobs", str(args.jobs),
                "--cache-dir", str(cache)]
        committed = kill_after_first_commit(base, cache, args.timeout)
        print(f"probe: killed the run after {committed} committed "
              f"phase(s)")

        journal = root / "resume.jsonl"
        proc = subprocess.run(base + ["--resume", "--log-json",
                                      str(journal)],
                              env=child_env(), stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            print(f"probe: FAILED, --resume run exited {proc.returncode}")
            return 1

        events, warnings = read_journal(journal)
        if warnings:
            print(f"probe: FAILED, resume journal warnings: {warnings}")
            return 1
        resume = next((e for e in events if e["type"] == "resume"), None)
        if resume is None:
            print("probe: FAILED, no resume event journaled")
            return 1
        cached, pending = resume["cached"], resume["pending"]
        if not cached:
            print("probe: FAILED, resume header lists no committed phase")
            return 1
        hits = {e["artifact"] for e in events if e["type"] == "cache_hit"}
        stores = {e["artifact"] for e in events
                  if e["type"] == "cache_store"}
        rebuilt = [name for name in cached
                   if name in stores or name not in hits]
        if rebuilt:
            print(f"probe: FAILED, committed phase(s) re-ran: "
                  f"{', '.join(rebuilt)}")
            return 1
        # The experiment set may not need every resumable phase, but a
        # resume that did no new work means the kill came too late.
        progressed = [name for name in pending if name in stores]
        if not progressed:
            print("probe: FAILED, resume committed nothing new; the "
                  "kill landed after the whole run finished")
            return 1
        print(f"probe: OK, resume served {len(cached)} phase(s) from "
              f"cache ({', '.join(cached)}) and committed "
              f"{len(progressed)} more ({', '.join(progressed)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
