#!/usr/bin/env python
"""Run the live engine clean and under ``--chaos``, prove they match.

The CI gate behind the live-platform determinism contract
(``docs/live.md``): a ``repro run live`` must be bit-identical across
``--jobs`` settings and under injected chaos.  The probe runs the same
live experiment three times in child processes — clean, clean with a
different ``--jobs``, and under a chaos profile — all with the cache
disabled so every run steps the engine for real, and asserts:

1. every run exits 0 (injected ``live.tick`` faults absorbed by retry);
2. all stdouts are byte-identical (same series, same digest);
3. the clean and chaos journals canonicalize to the same event stream
   (tick telemetry and retries live only in volatile events);
4. the chaos run actually journaled at least one ``live_retry`` when
   the profile arms the ``live.tick`` failpoint — a gate that cannot
   fire is no gate.

Usage::

    PYTHONPATH=src python scripts/live_probe.py --ticks 200
    PYTHONPATH=src python scripts/live_probe.py --profile harsh
"""

from __future__ import annotations

import argparse
import hashlib
import os
import subprocess
import sys
import tempfile
from pathlib import Path


def run_cli(scale: str, ticks: int, jobs: int, root: Path, name: str,
            chaos: str | None, faults: str | None) -> tuple[bytes, Path]:
    """One ``repro run live`` in a child; returns (stdout, journal)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env.pop("REPRO_FAILPOINTS", None)  # the child decides its own chaos
    journal = root / f"{name}.jsonl"
    argv = [sys.executable, "-m", "repro", "run", "live",
            "--scale", scale, "--ticks", str(ticks), "--jobs", str(jobs),
            "--no-cache", "--log-json", str(journal)]
    if chaos is not None:
        argv += ["--chaos", chaos]
    if faults is not None:
        argv += ["--faults", faults]
    proc = subprocess.run(argv, env=env, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        raise SystemExit(f"live probe: FAILED, {name} run exited "
                         f"{proc.returncode}")
    return proc.stdout, journal


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="ci",
                        help="chaos profile for the faulty run")
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--ticks", type=int, default=200)
    parser.add_argument("--jobs", type=int, default=4,
                        help="the alternate --jobs for the equality check")
    parser.add_argument("--faults", default=None,
                        help="also interleave this fault profile "
                             "(simulation weather, not harness chaos)")
    args = parser.parse_args(argv)

    from repro.obs import canonical_events, read_journal
    from repro.resilience import chaos_spec

    spec = chaos_spec(args.profile)
    with tempfile.TemporaryDirectory(prefix="live-probe-") as tmp:
        root = Path(tmp)
        clean_out, clean_journal = run_cli(
            args.scale, args.ticks, 1, root, "clean", None, args.faults)
        jobs_out, _ = run_cli(
            args.scale, args.ticks, args.jobs, root, "jobs", None,
            args.faults)
        chaos_out, chaos_journal = run_cli(
            args.scale, args.ticks, 1, root, "chaos", args.profile,
            args.faults)

        if clean_out != jobs_out:
            print(f"live probe: FAILED, --jobs {args.jobs} run produced "
                  "different stdout")
            return 1
        print(f"live probe: stdout identical across --jobs 1/{args.jobs}")
        if clean_out != chaos_out:
            print("live probe: FAILED, chaos run produced different stdout")
            return 1
        print(f"live probe: stdout identical under --chaos {args.profile} "
              f"(sha256 {hashlib.sha256(clean_out).hexdigest()[:12]})")

        clean_events, warnings_a = read_journal(clean_journal)
        chaos_events, warnings_b = read_journal(chaos_journal)
        if warnings_a or warnings_b:
            print(f"live probe: FAILED, journal warnings: "
                  f"{warnings_a + warnings_b}")
            return 1
        if canonical_events(clean_events) != canonical_events(chaos_events):
            print("live probe: FAILED, canonical journals differ")
            return 1
        print("live probe: canonical journals identical")

        retries = sum(1 for e in chaos_events if e["type"] == "live_retry")
        print(f"live probe: chaos run absorbed {retries} live.tick "
              f"fault(s) via retry")
        if "live.tick" in spec and not retries:
            print("live probe: FAILED, profile arms live.tick but no "
                  "live_retry was journaled")
            return 1
    print(f"live probe: OK, live run is bit-identical across --jobs and "
          f"--chaos {args.profile}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
