#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a fresh benchmark run.

Runs the full benchmark suite with output capture, extracts every
figure/table block and its paper-comparison checks, and rewrites
EXPERIMENTS.md.  Run from the repository root:

    python scripts/update_experiments.py [--pytest-args "..."]
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

HEADER = """\
# EXPERIMENTS — paper vs measured

Every benchmark in `benchmarks/` regenerates one table or figure of
*From Cloud to Edge: A First Look at Public Edge Platforms* (IMC 2021)
from the simulated study (`Scenario()` defaults: 520 sites, ~1200 VMs,
28 days at 5-minute resolution, seed 20211102) and checks the paper's
reported values and qualitative claims. `[OK ]` marks a check that holds
within its stated tolerance; orderings/crossovers are checked exactly.
Ablation benchmarks cover the §5 design questions (placement policy,
scheduling, deployment density, serverless, MEC, build-out growth).

Reproduce with:

```bash
pytest benchmarks/ --benchmark-only -s
```

Absolute numbers come from a calibrated simulator, not NEP's production
network, so tolerances are generous where the paper's numbers depend on
unobservable specifics (see docs/calibration.md); the *shape* — who
wins, by what factor, where crossovers sit — is asserted strictly.
Summary of this run: **{ok}/{total} checks hold** across {benches}
benchmarks.

Known, documented divergences (inside tolerances, called out for honesty):

* **Table 6 / Cloud-1**: the paper reports 16.6 ms at 670 km over WiFi,
  which is below the fibre round-trip floor plus its own measured access
  latency; our simulated value (~31 ms) respects physics, the monotone
  distance ordering is what the QoE results consume.
* **Table 3 levels**: our mean cost ratios sit below the paper's because
  the synthetic traffic is somewhat less peaky than NEP's; the model
  ordering (by-bandwidth < by-quantity < pre-reserved), the network
  dominance of NEP bills, and the cheaper-on-cloud outliers reproduce.
* **Figure 14 / cloud difficulty**: Azure's max-CPU RMSE exceeds the
  edge's (which matches the paper exactly) but by less than the paper's
  8.5% — the public Azure dataset's unpredictability has sources
  (deployment churn, priority classes) our generator does not model.
  Every (model, target) pair still favours the edge.

---

"""

_BLOCK_START = re.compile(
    r"^(Table|Figure|§4\.1|Ablation|Sales)", re.UNICODE)


def extract_blocks(output: str) -> list[str]:
    """Pull each title-through-checks block out of the pytest output."""
    blocks: list[str] = []
    current: list[str] = []
    capturing = False
    for line in output.splitlines():
        if _BLOCK_START.match(line) and ("—" in line or "-" in line):
            capturing = True
            current = [line]
            continue
        if capturing:
            current.append(line)
            if line.startswith("-- ") and "checks hold" in line:
                blocks.append("\n".join(current))
                capturing = False
    return blocks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pytest-args", default="",
                        help="extra arguments for the pytest invocation")
    args = parser.parse_args(argv)

    command = [sys.executable, "-m", "pytest", "benchmarks/",
               "--benchmark-only", "-s", "-q", "-p", "no:cacheprovider"]
    command.extend(args.pytest_args.split())
    print("running:", " ".join(command))
    completed = subprocess.run(command, cwd=REPO_ROOT,
                               capture_output=True, text=True)
    output = completed.stdout + completed.stderr
    if completed.returncode != 0:
        sys.stderr.write(output[-4000:])
        sys.stderr.write("\nbenchmarks failed; EXPERIMENTS.md not updated\n")
        return completed.returncode

    blocks = extract_blocks(output)
    ok = len(re.findall(r"\[OK \]", output))
    diff = len(re.findall(r"\[DIFF\]", output))
    header = HEADER.format(ok=ok, total=ok + diff, benches=len(blocks))
    body = "\n\n---\n\n".join(f"```\n{block}\n```" for block in blocks)
    (REPO_ROOT / "EXPERIMENTS.md").write_text(header + body + "\n")
    print(f"EXPERIMENTS.md updated: {len(blocks)} blocks, "
          f"{ok}/{ok + diff} checks hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
