#!/usr/bin/env python
"""Execute every fenced code snippet in README.md and docs/*.md.

Documentation drifts the moment nobody runs it.  This checker extracts
each fenced ``python`` and ``bash`` block from the user docs and runs
it, so a renamed flag, a dropped keyword argument, or a stale import in
an example fails CI instead of failing the first reader who pastes it.

Rules:

* ``python`` blocks run in-process via ``exec`` in a fresh namespace.
* ``bash`` blocks run line-by-line under ``bash -e`` with
  ``PYTHONPATH=src`` and a throwaway ``REPRO_CACHE_DIR``.
* An HTML comment directly above a fence tweaks handling:

  - ``<!-- docs-check: skip -->`` — don't run it (paper-scale walltime,
    network access, illustrative pseudo-code).
  - ``<!-- docs-check: continue -->`` — run a python block in the
    namespace of the previous python block from the same file, so a
    document can build one example across several fences.

* Fences with any other language tag (or none) are ignored.

Usage::

    PYTHONPATH=src python scripts/check_docs.py            # whole doc set
    PYTHONPATH=src python scripts/check_docs.py docs/api.md
"""

from __future__ import annotations

import argparse
import contextlib
import io
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RUNNABLE = ("python", "bash")


@dataclass
class Snippet:
    """One fenced code block lifted out of a markdown file."""

    path: Path
    line: int          # 1-based line of the opening fence
    language: str
    code: str
    directive: str | None  # "skip" | "continue" | None

    @property
    def label(self) -> str:
        return f"{self.path.relative_to(REPO_ROOT)}:{self.line}"


def extract_snippets(path: Path) -> list[Snippet]:
    """All fenced blocks in ``path``, with any docs-check directives."""
    snippets: list[Snippet] = []
    lines = path.read_text().splitlines()
    directive: str | None = None
    in_block = False
    language = ""
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block and stripped.startswith("<!-- docs-check:"):
            directive = stripped.removeprefix("<!-- docs-check:") \
                .removesuffix("-->").strip()
            continue
        if stripped.startswith("```"):
            if in_block:
                snippets.append(Snippet(path, start, language,
                                        "\n".join(buffer), directive))
                directive = None
                in_block = False
            else:
                in_block = True
                language = stripped.removeprefix("```").strip().lower()
                start = number
                buffer = []
            continue
        if in_block:
            buffer.append(line)
        elif stripped:
            directive = None  # a directive binds only to the next fence
    if in_block:
        raise SystemExit(f"{path}: unterminated code fence at line {start}")
    return snippets


def run_python(snippet: Snippet, namespace: dict | None) -> dict:
    """Exec a python block; returns the namespace for continuations."""
    if namespace is None:
        namespace = {"__name__": "__docs__"}
    code = compile(snippet.code, str(snippet.label), "exec")
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        exec(code, namespace)  # noqa: S102 - executing our own docs is the point
    return namespace


def render_failure(snippet: Snippet, reason: str) -> str:
    """A failure report carrying the offending snippet with file:line.

    Each code line is prefixed with its *document* line number, so the
    fix is one click away in an editor instead of a grep through the
    markdown for a stack-trace fragment.
    """
    excerpt = "\n".join(
        f"    {snippet.line + offset:>4} | {text}"
        for offset, text in enumerate(snippet.code.splitlines(), start=1))
    return (f"{snippet.label}: {reason.rstrip()}\n"
            f"  offending snippet ({snippet.language}):\n{excerpt}")


def run_bash(snippet: Snippet, env: dict[str, str]) -> None:
    subprocess.run(["bash", "-e", "-c", snippet.code], check=True,
                   cwd=REPO_ROOT, env=env, stdout=subprocess.DEVNULL,
                   stderr=subprocess.PIPE, text=True, timeout=600)


def check_file(path: Path, verbose: bool) -> tuple[int, int, list[str]]:
    """Run one file's snippets; returns (ran, skipped, failures)."""
    ran = skipped = 0
    failures: list[str] = []
    namespace: dict | None = None
    with tempfile.TemporaryDirectory(prefix="docs-check-") as cache_dir:
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"),
                   REPRO_CACHE_DIR=cache_dir)
        for snippet in extract_snippets(path):
            if snippet.language not in RUNNABLE:
                continue
            if snippet.directive == "skip":
                skipped += 1
                if verbose:
                    print(f"  skip {snippet.label}")
                continue
            if verbose:
                print(f"  run  {snippet.label} [{snippet.language}]")
            try:
                if snippet.language == "python":
                    shared = namespace if snippet.directive == "continue" \
                        else None
                    namespace = run_python(snippet, shared)
                else:
                    run_bash(snippet, env)
                ran += 1
            except subprocess.CalledProcessError as exc:
                failures.append(render_failure(
                    snippet, f"bash exited {exc.returncode}\n{exc.stderr}"))
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                failures.append(render_failure(
                    snippet, f"{type(exc).__name__}: {exc}"))
    return ran, skipped, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=Path,
                        help="markdown files (default: README.md docs/*.md)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print each snippet as it runs")
    args = parser.parse_args(argv)

    files = [path.resolve() for path in args.files] or \
        [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

    total_ran = total_skipped = 0
    all_failures: list[str] = []
    for path in files:
        if args.verbose:
            print(path.relative_to(REPO_ROOT))
        ran, skipped, failures = check_file(path, args.verbose)
        total_ran += ran
        total_skipped += skipped
        all_failures.extend(failures)

    for failure in all_failures:
        print(f"FAIL {failure}", file=sys.stderr)
    status = "FAILED" if all_failures else "OK"
    print(f"docs-check: {status} — {total_ran} snippet(s) ran, "
          f"{total_skipped} skipped, {len(all_failures)} failed "
          f"across {len(files)} file(s)")
    return 1 if all_failures else 0


if __name__ == "__main__":
    sys.exit(main())
