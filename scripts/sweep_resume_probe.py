#!/usr/bin/env python
"""Kill a sweep mid-run, resume it, and verify the resume contract.

The CI probe behind ``docs/sweep.md``'s crash-resume guarantees:

1. a sweep launched as a child process is SIGKILLed as soon as its
   first cell publishes — no graceful shutdown, no atexit hooks;
2. the output directory must then hold **only complete cells** (every
   visible ``cells/<name>/`` has an ``ok`` ``result.json``);
3. resuming the same config completes exactly the remaining cells and
   leaves the finished ones byte-untouched;
4. a second resume is a pure no-op (every cell reports ``resumed``).

``--kill worker`` probes the supervision layer one level down: instead
of killing the sweep, it SIGKILLs one of the sweep's *pool workers*
mid-cell and asserts the sweep itself still completes — the farm must
notice the silent death, journal a ``worker_restart``, and re-run the
lost cell.

Usage::

    PYTHONPATH=src python scripts/sweep_resume_probe.py \
        benchmarks/sweeps/ci_smoke.toml --jobs 2
    PYTHONPATH=src python scripts/sweep_resume_probe.py \
        benchmarks/sweeps/ci_smoke.toml --jobs 2 --kill worker
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

RUNNER = """\
import sys
from repro.sweep import load_sweep_spec, run_sweep
spec = load_sweep_spec(sys.argv[1])
result = run_sweep(spec, sys.argv[2], cache_dir=sys.argv[3],
                   jobs=int(sys.argv[4]))
sys.exit(0 if result.ok else 1)
"""


def visible_cells(cells_dir: Path) -> list[Path]:
    """Published cell directories (staging dirs are not cells)."""
    if not cells_dir.exists():
        return []
    return sorted(p for p in cells_dir.iterdir()
                  if p.is_dir() and not p.name.startswith(".tmp-"))


def kill_mid_run(config: Path, out: Path, cache: Path, jobs: int,
                 timeout_s: float) -> list[str]:
    """Run the sweep in a child, SIGKILL it after one cell publishes."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.Popen(
        [sys.executable, "-c", RUNNER, str(config), str(out), str(cache),
         str(jobs)], env=env)
    cells_dir = out / "cells"
    try:
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            if proc.poll() is not None or visible_cells(cells_dir):
                break
            time.sleep(0.02)
        if proc.poll() is not None:
            raise SystemExit("probe: sweep finished before it could be "
                             "killed; use a larger grid")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    completed = [p.name for p in visible_cells(cells_dir)]
    if not completed:
        raise SystemExit("probe: no cell completed before the kill")
    return completed


def _launch(config: Path, out: Path, cache: Path, jobs: int):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return subprocess.Popen(
        [sys.executable, "-c", RUNNER, str(config), str(out), str(cache),
         str(jobs)], env=env)


def pool_workers(pid: int) -> list[int]:
    """Forked pool workers of ``pid`` (multiprocessing helper processes
    such as the resource tracker run a different command line)."""
    try:
        raw = Path(f"/proc/{pid}/task/{pid}/children").read_text()
    except OSError:
        return []
    workers = []
    for child in (int(token) for token in raw.split()):
        try:
            cmdline = Path(f"/proc/{child}/cmdline").read_bytes()
        except OSError:
            continue
        if b"tracker" not in cmdline:
            workers.append(child)
    return workers


def worker_kill_probe(config: Path, jobs: int, timeout_s: float) -> int:
    """SIGKILL one pool worker; the sweep must self-heal and finish."""
    from repro.obs import read_journal
    from repro.sweep import load_sweep_spec

    spec = load_sweep_spec(config)
    with tempfile.TemporaryDirectory(prefix="sweep-probe-") as root:
        out = Path(root) / "out"
        cache = Path(root) / "cache"
        proc = _launch(config, out, cache, jobs)
        victim = None
        try:
            deadline = time.time() + timeout_s
            while time.time() < deadline:
                if proc.poll() is not None:
                    raise SystemExit("probe: sweep finished before a "
                                     "worker could be killed; use a "
                                     "larger grid")
                workers = pool_workers(proc.pid)
                if workers:
                    victim = workers[0]
                    os.kill(victim, signal.SIGKILL)
                    break
                time.sleep(0.01)
            if victim is None:
                raise SystemExit("probe: no pool worker appeared before "
                                 "the timeout")
            returncode = proc.wait(timeout=600)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        print(f"probe: SIGKILLed pool worker {victim} mid-sweep")
        if returncode != 0:
            print(f"probe: FAILED, sweep exited {returncode} after the "
                  f"worker kill")
            return 1
        completed = visible_cells(out / "cells")
        if len(completed) != len(spec.cells):
            print(f"probe: FAILED, only {len(completed)}/"
                  f"{len(spec.cells)} cells completed")
            return 1
        from repro.sweep.runner import JOURNAL_NAME

        events, _ = read_journal(out / JOURNAL_NAME)
        restarts = [e for e in events if e["type"] == "worker_restart"]
        if not restarts:
            print("probe: FAILED, no worker_restart event journaled")
            return 1
        print(f"probe: OK, sweep completed all {len(completed)} cells "
              f"after restarting worker for cell "
              f"{restarts[0].get('task')!r}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("config", type=Path,
                        help="sweep spec (.toml or .json), >= 2 cells")
    parser.add_argument("--jobs", type=int, default=1,
                        help="concurrent cells for the killed run and "
                             "the resume")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to wait for the first cell before "
                             "giving up")
    parser.add_argument("--kill", choices=("sweep", "worker"),
                        default="sweep",
                        help="what to SIGKILL: the whole sweep process "
                             "(resume contract) or one of its pool "
                             "workers (supervision contract)")
    args = parser.parse_args(argv)

    if args.kill == "worker":
        if args.jobs < 2:
            print("probe: --kill worker needs --jobs >= 2 (a serial "
                  "sweep has no pool workers)")
            return 1
        return worker_kill_probe(args.config, args.jobs, args.timeout)

    from repro.sweep import load_sweep_spec, run_sweep

    spec = load_sweep_spec(args.config)
    if len(spec.cells) < 2:
        print(f"probe: config has {len(spec.cells)} cell(s); need >= 2")
        return 1

    with tempfile.TemporaryDirectory(prefix="sweep-probe-") as root:
        out = Path(root) / "out"
        cache = Path(root) / "cache"
        completed = kill_mid_run(args.config, out, cache, args.jobs,
                                 args.timeout)
        print(f"probe: killed after {len(completed)}/{len(spec.cells)} "
              f"cell(s): {', '.join(completed)}")

        cells_dir = out / "cells"
        for cell_dir in visible_cells(cells_dir):
            payload = json.loads(
                (cell_dir / "result.json").read_text(encoding="utf-8"))
            if payload.get("status") != "ok":
                print(f"probe: FAILED, visible cell {cell_dir.name!r} is "
                      f"not complete")
                return 1
        before = {p.name: (p / "journal.jsonl").read_bytes()
                  for p in visible_cells(cells_dir)}

        resumed = run_sweep(spec, out, cache_dir=str(cache),
                            jobs=args.jobs)
        statuses = {c.name: c.status for c in resumed.cells}
        if not resumed.ok:
            print(f"probe: FAILED, resume left failed cells: "
                  f"{', '.join(resumed.failed)}")
            return 1
        wrong = [name for name in completed
                 if statuses.get(name) != "resumed"]
        if wrong:
            print(f"probe: FAILED, completed cell(s) re-ran: "
                  f"{', '.join(wrong)}")
            return 1
        for name, blob in before.items():
            if (cells_dir / name / "journal.jsonl").read_bytes() != blob:
                print(f"probe: FAILED, resume rewrote {name!r}")
                return 1
        fresh = sum(1 for s in statuses.values() if s == "ok")
        print(f"probe: resume completed the remaining {fresh} cell(s), "
              f"finished cells untouched")

        noop = run_sweep(spec, out, cache_dir=str(cache), jobs=args.jobs)
        if not (noop.ok and noop.resumed == len(noop.cells)):
            print("probe: FAILED, finished sweep re-run was not a no-op")
            return 1
        print("probe: OK, finished sweep re-run is a no-op")
    return 0


if __name__ == "__main__":
    sys.exit(main())
