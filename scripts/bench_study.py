#!/usr/bin/env python
"""Benchmark the study's hot phases and track them in BENCH_study.json.

Runs the four expensive :class:`repro.EdgeStudy` phases (NEP workload,
Azure workload, latency campaign, throughput campaign) at a chosen scale,
taking the best of ``--repeat`` runs per phase, and records the result in
a JSON ledger keyed by scale.  The ledger is committed so the perf
trajectory of the simulator is tracked from PR to PR.

Usage::

    PYTHONPATH=src python scripts/bench_study.py --scale default
    PYTHONPATH=src python scripts/bench_study.py --scale smoke \
        --check BENCH_study.json --max-regression 2.0   # CI gate

``--check`` compares the fresh run against the committed ledger and exits
non-zero if the latency-campaign phase regressed by more than
``--max-regression``x — the CI guard for the vectorized batch engine.

``--cache-dir`` additionally measures the persistent artifact cache: one
cold run populating it and one warm run served from it, both recorded in
the ledger entry.  ``--assert-warm`` turns the warm run into a CI gate:
the process exits non-zero unless every tracked phase was served from
the cache (generation skipped entirely).

The out-of-core tier has its own knobs: ``--scale city`` selects the
~1M-VM scenario, ``--vms``/``--sites`` shrink it to a CI-sized probe,
``--streaming`` forces the sharded sink on or off, and
``--assert-peak-rss-mb`` gates the parent process's peak RSS (VmHWM, as
sampled by the run journal) — the memory contract of the streaming
path.  ``--handoff-bench`` additionally measures the worker-pool result
transport (shared-memory ring vs pickle) on synthetic series jobs and
records the comparison in the ledger.

``--sweep-bench CONFIG`` times the sweep orchestrator against a serial
per-cell baseline: every cell of the grid re-run alone with its own
fresh cache (no sharing) versus one :func:`repro.sweep.run_sweep` over
the same grid with a shared fresh cache and ``--jobs`` workers.  The
comparison lands in the run stanza's ``sweep`` section;
``--assert-sweep-speedup X`` turns it into a CI gate (exit non-zero
below ``X``x).
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: The phases tracked per run, in execution order.
PHASES = ("workload_nep", "workload_azure", "campaign_latency",
          "campaign_throughput", "qoe_sessions")

#: Optional per-scale ledger sections measured by dedicated flags.  A
#: run that does not re-measure one keeps the previously committed
#: value instead of silently dropping it from the ledger.
OPTIONAL_SECTIONS = ("handoff", "sweep", "cache", "qoe_sessions", "live")


def effective_seed(seed: int | None) -> int:
    """The seed a run actually uses (the scenario default when unset)."""
    from repro.config import DEFAULT_SCENARIO

    return seed if seed is not None else DEFAULT_SCENARIO.seed


def build_scenario(scale: str, seed: int | None,
                   overrides: dict[str, int] | None = None):
    """The bench scenario: a named scale plus optional size overrides."""
    from repro.study import scenario_for

    scenario = scenario_for(scale, seed)
    if overrides:
        scenario = scenario.with_overrides(**overrides)
    return scenario


def run_once(scale: str, seed: int | None, jobs: int = 1,
             cache=None, overrides: dict[str, int] | None = None,
             streaming: str = "auto") -> dict[str, object]:
    """One study run; returns its perf registry as a dict.

    The run carries an in-memory :class:`repro.obs.RunJournal`, so the
    result also has a ``"journal_phases"`` breakdown (wall/cpu/memory and
    an explicit ``cached`` flag per phase) — the journal is what lets the
    ledger distinguish a phase that *ran* from one served by the cache,
    and its per-phase ``peak_rss_mb`` samples are what the
    ``--assert-peak-rss-mb`` gate reads.
    """
    from repro.obs import RunJournal, phase_breakdown
    from repro.study import EdgeStudy

    with RunJournal(None) as journal:
        study = EdgeStudy(build_scenario(scale, seed, overrides), jobs=jobs,
                          cache=cache, journal=journal, streaming=streaming)
        study.nep
        study.azure
        study.latency_results
        study.throughput_results
        study.qoe_sessions
        journal.close(counters=study.perf.counters or None)
    result = study.perf.as_dict()
    result["journal_phases"] = phase_breakdown(journal.events)
    return result


def bench(scale: str, seed: int | None, repeats: int, jobs: int,
          overrides: dict[str, int] | None = None,
          streaming: str = "auto") -> dict[str, object]:
    """Best-of-``repeats`` phase timings (min is robust to CI noise)."""
    from repro.parallel import resolve_jobs

    runs = [run_once(scale, seed, jobs, overrides=overrides,
                     streaming=streaming)
            for _ in range(repeats)]
    phases: dict[str, dict[str, float]] = {}
    for phase in PHASES:
        samples = [run["spans"][phase] for run in runs
                   if phase in run["spans"]]
        if not samples:
            continue
        phases[phase] = {
            "wall_s": min(s["wall_s"] for s in samples),
            "cpu_s": min(s["cpu_s"] for s in samples),
        }
        peaks = [run["journal_phases"][phase]["peak_rss_mb"] for run in runs
                 if "peak_rss_mb" in run["journal_phases"].get(phase, {})]
        if peaks:
            phases[phase]["peak_rss_mb"] = max(peaks)
    total = sum(p["wall_s"] for p in phases.values())
    row = {
        "seed": effective_seed(seed),
        "jobs": resolve_jobs(jobs),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "phases": phases,
        "total_wall_s": round(total, 6),
        "counters": runs[0]["counters"],
        "python": platform_mod.python_version(),
        "numpy": np.__version__,
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
    }
    if overrides:
        row["overrides"] = dict(sorted(overrides.items()))
    if streaming != "auto":
        row["streaming"] = streaming
    return row


def peak_rss_mb(fresh: dict[str, object]) -> float:
    """The run's peak parent RSS: max over the tracked phases' samples."""
    peaks = [stats.get("peak_rss_mb", 0.0)
             for stats in fresh["phases"].values()]
    return max(peaks, default=0.0)


def bench_handoff(scale: str, seed: int | None,
                  overrides: dict[str, int] | None = None,
                  app_count: int = 12,
                  vms_per_app: int = 24) -> dict[str, object]:
    """Time the pooled series-render transports: shm ring vs pickle.

    Renders one synthetic job set twice through
    :func:`repro.parallel.run_series_jobs` with two worker processes,
    differing only in ``handoff``.  Output is bit-identical by contract,
    so the wall-clock delta is pure transport cost.
    """
    from repro.parallel import run_series_jobs
    from repro.workload.apps import NEP_PROFILES
    from repro.workload.series import NEP_RECIPE, SeriesJob

    scenario = build_scenario(scale, seed, overrides)
    jobs_list = [
        SeriesJob(app_id=f"bench-app{i:03d}",
                  profile=NEP_PROFILES[i % len(NEP_PROFILES)],
                  vm_count=vms_per_app)
        for i in range(app_count)
    ]
    result: dict[str, object] = {
        "apps": app_count,
        "vms_per_app": vms_per_app,
        "workers": 2,
    }
    total_vms = app_count * vms_per_app
    walls = {}
    for handoff in ("pickle", "shm"):
        moved = 0
        start = time.perf_counter()
        for block in run_series_jobs(jobs_list, scenario, NEP_RECIPE,
                                     n_jobs=2, handoff=handoff):
            moved += block.cpu_rows.nbytes + block.bw_rows.nbytes
            if block.private_rows is not None:
                moved += block.private_rows.nbytes
        walls[handoff] = time.perf_counter() - start
        result[f"{handoff}_wall_s"] = round(walls[handoff], 6)
        # Self-describing throughput: the speedup ratio can be sanity-
        # checked from the row alone, without knowing the job shape.
        result[f"{handoff}_vms_per_s"] = round(
            total_vms / max(walls[handoff], 1e-9), 1)
        result["block_bytes"] = moved
    result["shm_speedup"] = round(
        walls["pickle"] / max(walls["shm"], 1e-9), 3)
    return result


def bench_qoe(scale: str, seed: int | None, jobs: int = 1,
              sessions: int | None = None,
              reference_sessions: int = 300,
              streaming: str = "auto") -> dict[str, object]:
    """Benchmark the vectorized session engine against its reference.

    Runs the full ``qoe_sessions`` study phase (both arms, chunked,
    journaled — its wall and ``peak_rss_mb`` sample feed the RSS gate),
    then times the vectorized engine and the scalar reference on the
    same prebuilt workload — engine throughput, with the analytic
    cache-model solve kept out of both sides of the ratio — and checks
    golden-digest equivalence on a shared slice.  ``sessions``
    overrides the scale's session count.
    """
    import dataclasses

    from repro.cdn import CdnModel
    from repro.obs import RunJournal, phase_breakdown
    from repro.qoe import (ARMS, SessionDigest, build_session_workload,
                           run_sessions, simulate_reference)
    from repro.study import EdgeStudy

    overrides = ({"qoe_session_count": sessions}
                 if sessions is not None else None)
    scenario = build_scenario(scale, seed, overrides)
    with RunJournal(None) as journal:
        study = EdgeStudy(scenario, jobs=jobs, journal=journal,
                          streaming=streaming)
        start = time.perf_counter()
        result = study.qoe_sessions
        phase_wall = time.perf_counter() - start
        journal.close(counters=study.perf.counters or None)
    breakdown = phase_breakdown(journal.events).get("qoe_sessions", {})

    workload = build_session_workload(scenario, model=CdnModel(scenario))
    start = time.perf_counter()
    for arm in ARMS:
        run_sessions(workload, arm, jobs=jobs)
    engine_wall = time.perf_counter() - start
    simulated = workload.n_sessions * len(ARMS)
    sessions_per_s = simulated / max(engine_wall, 1e-9)

    slice_workload = dataclasses.replace(workload,
                                         n_sessions=reference_sessions)
    start = time.perf_counter()
    reference = simulate_reference(slice_workload, "edge")
    reference_wall = time.perf_counter() - start
    reference_per_s = reference_sessions / max(reference_wall, 1e-9)
    digest = SessionDigest()
    digest.update(reference)
    vectorized = run_sessions(slice_workload, "edge")
    row = {
        "sessions": result.sessions,
        "ticks": result.ticks,
        "arms": len(result.arms),
        "abr": result.abr,
        "hit_ratio_mean": round(result.hit_ratio_mean, 4),
        "phase_wall_s": round(phase_wall, 6),
        "wall_s": round(engine_wall, 6),
        "sessions_per_s": round(sessions_per_s, 1),
        "reference_sessions": reference_sessions,
        "reference_sessions_per_s": round(reference_per_s, 1),
        "speedup": round(sessions_per_s / max(reference_per_s, 1e-9), 1),
        "digest_match": vectorized.digest == digest.hexdigest(),
    }
    peak = breakdown.get("peak_rss_mb")
    if peak is not None:
        row["peak_rss_mb"] = peak
    return row


def bench_live(scale: str, seed: int | None, jobs: int = 1,
               ticks: int | None = None,
               reference_ticks: int = 60) -> dict[str, object]:
    """Benchmark the vectorized live stepper against its scalar twin.

    Runs the full ``live`` study phase (journaled — its ``peak_rss_mb``
    sample is the city-tier memory row), then times the vectorized
    stepper on the full precomputed inputs and the per-server scalar
    reference on a ``reference_ticks`` prefix of the *same* inputs, and
    checks digest equivalence of the two steppers on that shared
    prefix.  ``ticks`` overrides the scale's tick count.
    """
    import dataclasses

    from repro.live import (build_live_inputs, run_live_engine,
                            run_reference_engine)
    from repro.obs import RunJournal, phase_breakdown
    from repro.platform.nep import build_nep_platform
    from repro.study import EdgeStudy

    overrides = {"live_ticks": ticks} if ticks is not None else None
    scenario = build_scenario(scale, seed, overrides)
    with RunJournal(None) as journal:
        study = EdgeStudy(scenario, jobs=jobs, journal=journal)
        start = time.perf_counter()
        result = study.live
        phase_wall = time.perf_counter() - start
        journal.close(counters=study.perf.counters or None)
    breakdown = phase_breakdown(journal.events).get("live", {})

    inputs = build_live_inputs(scenario, build_nep_platform(scenario))
    start = time.perf_counter()
    run_live_engine(inputs)
    engine_wall = time.perf_counter() - start
    ticks_per_s = inputs.ticks / max(engine_wall, 1e-9)

    reference_ticks = min(reference_ticks, inputs.ticks)
    slice_inputs = dataclasses.replace(
        inputs, ticks=reference_ticks,
        arrivals=inputs.arrivals[:reference_ticks],
        transitions=tuple(tr for tr in inputs.transitions
                          if tr[0] < reference_ticks))
    start = time.perf_counter()
    reference = run_reference_engine(slice_inputs)
    reference_wall = time.perf_counter() - start
    reference_per_s = reference_ticks / max(reference_wall, 1e-9)
    vectorized = run_live_engine(slice_inputs)
    row = {
        "ticks": result.ticks,
        "servers": result.servers,
        "autoscale": result.autoscale,
        "phase_wall_s": round(phase_wall, 6),
        "wall_s": round(engine_wall, 6),
        "ticks_per_s": round(ticks_per_s, 1),
        "reference_ticks": reference_ticks,
        "reference_ticks_per_s": round(reference_per_s, 1),
        "speedup": round(ticks_per_s / max(reference_per_s, 1e-9), 1),
        "digest_match": vectorized.digest == reference.digest,
    }
    peak = breakdown.get("peak_rss_mb")
    if peak is not None:
        row["peak_rss_mb"] = peak
    return row


#: Child program for one sweep-bench measurement.  Runs in a pristine
#: interpreter so heap/cache state left behind by the main bench can't
#: skew the forked sweep workers; wall-clock is taken *inside* the
#: child, so interpreter start-up is excluded from both sides.
_SWEEP_BENCH_CHILD = """\
import json, sys, time
from pathlib import Path

from repro.sweep import SweepSpec, load_sweep_spec, run_sweep

config, root, jobs, mode = sys.argv[1], Path(sys.argv[2]), \
    int(sys.argv[3]), sys.argv[4]
spec = load_sweep_spec(Path(config))
if mode.startswith("cell:"):
    cell = spec.cell(mode.partition(":")[2])
    solo = SweepSpec(name=f"{spec.name}-serial-{cell.name}",
                     cells=(cell,))
    start = time.perf_counter()
    result = run_sweep(solo, root / "out", cache_dir=root / "cache",
                       jobs=1)
    total = time.perf_counter() - start
    if not result.ok:
        sys.exit(f"serial baseline cell {cell.name!r} failed")
else:
    start = time.perf_counter()
    result = run_sweep(spec, root / "out", cache_dir=root / "cache",
                       jobs=jobs)
    total = time.perf_counter() - start
    if not result.ok:
        sys.exit("sweep cells failed: "
                 + ", ".join(c.name for c in result.failed))
print(json.dumps({"wall_s": total}))
"""


def _sweep_bench_child(config: Path, workdir: Path, jobs: int,
                       mode: str) -> float:
    """One isolated sweep-bench measurement; returns its wall seconds."""
    proc = subprocess.run(
        [sys.executable, "-c", _SWEEP_BENCH_CHILD, str(config),
         str(workdir), str(jobs), mode],
        capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"sweep bench {mode} run failed:\n{proc.stderr.strip()}")
    return float(json.loads(proc.stdout.splitlines()[-1])["wall_s"])


def bench_sweep(config: Path, jobs: int,
                repeats: int = 3) -> dict[str, object]:
    """Sweep-orchestrator wall-clock vs serial per-cell cold runs.

    The serial baseline regenerates the campaign one cell at a time,
    each :func:`repro.sweep.run_sweep` call against its own fresh cache
    and output directory — the same code path as the sweep, minus all
    sharing.  The sweep run then executes the whole grid at once with a
    shared fresh cache and ``jobs`` workers, so cells in the same
    workload group render their artifacts exactly once.

    Every measurement runs in its own fresh interpreter (see
    :data:`_SWEEP_BENCH_CHILD`): one process *per serial cell* — the
    baseline is what N separate CLI invocations cost, fully cold each
    time — and one per whole-grid sweep.  Wall-clock is taken inside
    the child (interpreter start-up excluded on both sides) and both
    sides take the best of ``repeats`` runs, so neither leftover
    parent-process heap nor one noisy scheduler hiccup on a loaded CI
    host can flip the gate.
    """
    from repro.parallel import resolve_jobs
    from repro.sweep import load_sweep_spec

    spec = load_sweep_spec(config)
    with tempfile.TemporaryDirectory(prefix="sweep-bench-") as root:
        root_path = Path(root)
        serial_s = min(
            sum(_sweep_bench_child(
                    config, root_path / f"serial-{rep}-{index}", jobs,
                    f"cell:{cell.name}")
                for index, cell in enumerate(spec.cells))
            for rep in range(repeats))
        sweep_s = min(
            _sweep_bench_child(config, root_path / f"sweep-{rep}", jobs,
                               "sweep")
            for rep in range(repeats))
    return {
        "config": str(config),
        "cells": len(spec.cells),
        "jobs": resolve_jobs(jobs),
        "repeats": repeats,
        "serial_wall_s": round(serial_s, 6),
        "sweep_wall_s": round(sweep_s, 6),
        "speedup": round(serial_s / max(sweep_s, 1e-9), 2),
    }


def bench_cache(scale: str, seed: int | None, jobs: int,
                cache_dir: Path,
                overrides: dict[str, int] | None = None,
                streaming: str = "auto") -> dict[str, object]:
    """One cold run populating ``cache_dir``, one warm run served from it.

    Both runs record *per-phase* timings, with an explicit ``cached``
    flag per phase.  A warm phase served from the cache still gets an
    entry (its load time, ``cached: true``) instead of being dropped, so
    cold/warm rows in the ledger stay phase-aligned and comparable.
    """
    from repro.cache import ArtifactCache

    cache = ArtifactCache(cache_dir)
    timings = {}
    phase_rows: dict[str, dict[str, dict]] = {}
    for label in ("cold", "warm"):
        start = time.perf_counter()
        run = run_once(scale, seed, jobs, cache, overrides=overrides,
                       streaming=streaming)
        timings[label] = {
            "wall_s": round(time.perf_counter() - start, 6),
            "run": run,
        }
        phase_rows[label] = {
            phase: {
                "wall_s": entry.get("wall_s"),
                "cpu_s": entry.get("cpu_s"),
                "cached": bool(entry.get("cached")),
            }
            for phase, entry in run["journal_phases"].items()
            if phase in PHASES
        }
    warm = timings["warm"]["run"]
    cold_s = timings["cold"]["wall_s"]
    warm_s = timings["warm"]["wall_s"]
    return {
        "dir": str(cache_dir),
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "warm_speedup": round(cold_s / max(warm_s, 1e-9), 2),
        "warm_hits": {phase: bool(warm["counters"].get(f"cache_hit:{phase}"))
                      for phase in PHASES},
        "phases": phase_rows,
    }


def load_ledger(path: Path) -> dict[str, object]:
    if path.exists():
        with path.open() as handle:
            return json.load(handle)
    return {"schema": 1, "runs": {}}


def write_ledger(ledger: dict[str, object], path: Path) -> None:
    """Atomically replace ``path`` with the serialized ledger.

    Written via a sibling temp file + ``os.replace`` so an interrupted
    run (ctrl-C, OOM, full disk) never leaves a truncated JSON behind
    for the next ``--check`` to choke on.
    """
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(ledger, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise


def check_regression(ledger: dict[str, object], scale: str,
                     fresh: dict[str, object], max_ratio: float) -> int:
    """Return 0 if the campaign phase is within budget, 1 otherwise."""
    runs = ledger.get("runs", {})
    if scale not in runs:
        print(f"check: no committed baseline for scale {scale!r}; skipping")
        return 0
    baseline = runs[scale]["phases"].get("campaign_latency")
    current = fresh["phases"].get("campaign_latency")
    if baseline is None or current is None:
        print("check: campaign_latency phase missing; skipping")
        return 0
    ratio = current["wall_s"] / max(baseline["wall_s"], 1e-9)
    verdict = "OK" if ratio <= max_ratio else "REGRESSION"
    print(f"check: campaign_latency {current['wall_s']:.3f}s vs committed "
          f"{baseline['wall_s']:.3f}s -> {ratio:.2f}x (budget "
          f"{max_ratio:.1f}x) {verdict}")
    return 0 if ratio <= max_ratio else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale",
                        choices=("smoke", "default", "paper", "city"),
                        default="default")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per phase; the minimum is kept")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for workload generation "
                             "(0 = all CPU cores)")
    parser.add_argument("--vms", type=int, default=None, metavar="N",
                        help="override both platforms' VM counts (CI-sized "
                             "probes of the city tier)")
    parser.add_argument("--sites", type=int, default=None, metavar="N",
                        help="override the NEP site count")
    parser.add_argument("--streaming", choices=("auto", "on", "off"),
                        default="auto",
                        help="workload streaming mode (default: auto)")
    parser.add_argument("--assert-peak-rss-mb", type=float, default=None,
                        metavar="MB",
                        help="exit non-zero if the parent's peak RSS over "
                             "the tracked phases exceeds this")
    parser.add_argument("--handoff-bench", action="store_true",
                        help="also time the pooled series transports "
                             "(shared-memory ring vs pickle)")
    parser.add_argument("--sweep-bench", type=Path, default=None,
                        metavar="CONFIG",
                        help="also time a sweep over this grid config vs "
                             "serial per-cell cold runs")
    parser.add_argument("--assert-sweep-speedup", type=float, default=None,
                        metavar="X",
                        help="with --sweep-bench: exit non-zero unless the "
                             "sweep beats the serial baseline by this "
                             "factor")
    parser.add_argument("--qoe-bench", action="store_true",
                        help="also benchmark the vectorized session "
                             "engine against the scalar reference")
    parser.add_argument("--qoe-sessions", type=int, default=None,
                        metavar="N",
                        help="with --qoe-bench: override the session "
                             "count for the vectorized run")
    parser.add_argument("--assert-qoe-speedup", type=float, default=None,
                        metavar="X",
                        help="with --qoe-bench: exit non-zero unless the "
                             "vectorized engine beats the scalar "
                             "reference by this factor")
    parser.add_argument("--live-bench", action="store_true",
                        help="also benchmark the vectorized live-platform "
                             "stepper against the scalar reference")
    parser.add_argument("--live-ticks", type=int, default=None, metavar="N",
                        help="with --live-bench: override the tick count "
                             "for the vectorized run")
    parser.add_argument("--assert-live-speedup", type=float, default=None,
                        metavar="X",
                        help="with --live-bench: exit non-zero unless the "
                             "vectorized stepper beats the scalar "
                             "reference by this factor")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="also measure a cold + warm artifact-cache "
                             "cycle rooted here")
    parser.add_argument("--assert-warm", action="store_true",
                        help="with --cache-dir: exit non-zero unless the "
                             "warm run hit the cache on every phase")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_study.json",
                        help="ledger to update (default: repo root)")
    parser.add_argument("--check", type=Path, default=None,
                        help="compare against this committed ledger instead "
                             "of writing")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="allowed campaign_latency slowdown for --check")
    args = parser.parse_args(argv)

    if args.scale in ("paper", "city") and args.repeat > 1:
        args.repeat = 1  # a paper-scale repeat is minutes, once is plenty

    if args.assert_warm and args.cache_dir is None:
        parser.error("--assert-warm requires --cache-dir")
    if args.assert_sweep_speedup is not None and args.sweep_bench is None:
        parser.error("--assert-sweep-speedup requires --sweep-bench")
    if args.assert_qoe_speedup is not None and not args.qoe_bench:
        parser.error("--assert-qoe-speedup requires --qoe-bench")
    if args.qoe_sessions is not None and not args.qoe_bench:
        parser.error("--qoe-sessions requires --qoe-bench")
    if args.assert_live_speedup is not None and not args.live_bench:
        parser.error("--assert-live-speedup requires --live-bench")
    if args.live_ticks is not None and not args.live_bench:
        parser.error("--live-ticks requires --live-bench")

    overrides: dict[str, int] = {}
    if args.vms is not None:
        overrides["nep_vm_count"] = args.vms
        overrides["azure_vm_count"] = args.vms
    if args.sites is not None:
        overrides["nep_site_count"] = args.sites

    fresh = bench(args.scale, args.seed, args.repeat, args.jobs,
                  overrides=overrides or None, streaming=args.streaming)
    print(f"scale={args.scale} jobs={args.jobs} "
          f"(host: {fresh['cpu_count']} cores):")
    for phase, stats in fresh["phases"].items():
        peak = stats.get("peak_rss_mb")
        peak_note = f"  peak {peak:.0f} MB" if peak is not None else ""
        print(f"  {phase:<22}{stats['wall_s']:>9.3f}s wall "
              f"{stats['cpu_s']:>9.3f}s cpu{peak_note}")
    print(f"  {'total':<22}{fresh['total_wall_s']:>9.3f}s wall")

    if args.assert_peak_rss_mb is not None:
        peak = peak_rss_mb(fresh)
        if peak > args.assert_peak_rss_mb:
            print(f"assert-peak-rss: FAILED, peak {peak:.1f} MB exceeds "
                  f"budget {args.assert_peak_rss_mb:.1f} MB")
            return 1
        print(f"assert-peak-rss: OK, peak {peak:.1f} MB within "
              f"{args.assert_peak_rss_mb:.1f} MB")

    if args.handoff_bench:
        handoff = bench_handoff(args.scale, args.seed,
                                overrides=overrides or None)
        fresh["handoff"] = handoff
        print(f"  handoff: pickle {handoff['pickle_wall_s']:.3f}s "
              f"({handoff['pickle_vms_per_s']:.0f} VMs/s), shm "
              f"{handoff['shm_wall_s']:.3f}s "
              f"({handoff['shm_vms_per_s']:.0f} VMs/s, "
              f"{handoff['shm_speedup']}x)")

    if args.qoe_bench:
        qoe_stats = bench_qoe(args.scale, args.seed, jobs=args.jobs,
                              sessions=args.qoe_sessions,
                              streaming=args.streaming)
        fresh["qoe_sessions"] = qoe_stats
        print(f"  qoe: {qoe_stats['sessions']} sessions x "
              f"{qoe_stats['arms']} arms in {qoe_stats['wall_s']:.3f}s "
              f"({qoe_stats['sessions_per_s']:.0f}/s vectorized vs "
              f"{qoe_stats['reference_sessions_per_s']:.0f}/s scalar, "
              f"{qoe_stats['speedup']}x)")
        if not qoe_stats["digest_match"]:
            print("qoe-digest: FAILED, vectorized output diverges from "
                  "the scalar reference")
            return 1
        print("qoe-digest: OK, vectorized matches the scalar reference "
              "bit for bit")
        if args.assert_qoe_speedup is not None:
            if qoe_stats["speedup"] < args.assert_qoe_speedup:
                print(f"assert-qoe-speedup: FAILED, "
                      f"{qoe_stats['speedup']}x below the "
                      f"{args.assert_qoe_speedup}x budget")
                return 1
            print(f"assert-qoe-speedup: OK, {qoe_stats['speedup']}x "
                  f">= {args.assert_qoe_speedup}x")
        qoe_peak = qoe_stats.get("peak_rss_mb")
        if (args.assert_peak_rss_mb is not None and qoe_peak is not None
                and qoe_peak > args.assert_peak_rss_mb):
            print(f"assert-peak-rss: FAILED, qoe phase peaked at "
                  f"{qoe_peak:.1f} MB over "
                  f"{args.assert_peak_rss_mb:.1f} MB")
            return 1

    if args.live_bench:
        live_stats = bench_live(args.scale, args.seed, jobs=args.jobs,
                                ticks=args.live_ticks)
        fresh["live"] = live_stats
        print(f"  live: {live_stats['ticks']} ticks over "
              f"{live_stats['servers']} servers in "
              f"{live_stats['wall_s']:.3f}s "
              f"({live_stats['ticks_per_s']:.0f} ticks/s vectorized vs "
              f"{live_stats['reference_ticks_per_s']:.0f} ticks/s scalar, "
              f"{live_stats['speedup']}x)")
        if not live_stats["digest_match"]:
            print("live-digest: FAILED, vectorized stepper diverges from "
                  "the scalar reference")
            return 1
        print("live-digest: OK, vectorized matches the scalar reference "
              "bit for bit")
        if args.assert_live_speedup is not None:
            if live_stats["speedup"] < args.assert_live_speedup:
                print(f"assert-live-speedup: FAILED, "
                      f"{live_stats['speedup']}x below the "
                      f"{args.assert_live_speedup}x budget")
                return 1
            print(f"assert-live-speedup: OK, {live_stats['speedup']}x "
                  f">= {args.assert_live_speedup}x")
        live_peak = live_stats.get("peak_rss_mb")
        if (args.assert_peak_rss_mb is not None and live_peak is not None
                and live_peak > args.assert_peak_rss_mb):
            print(f"assert-peak-rss: FAILED, live phase peaked at "
                  f"{live_peak:.1f} MB over "
                  f"{args.assert_peak_rss_mb:.1f} MB")
            return 1

    if args.sweep_bench is not None:
        sweep_stats = bench_sweep(args.sweep_bench, args.jobs)
        fresh["sweep"] = sweep_stats
        print(f"  sweep: serial {sweep_stats['serial_wall_s']:.3f}s, "
              f"sweep {sweep_stats['sweep_wall_s']:.3f}s "
              f"({sweep_stats['speedup']}x over {sweep_stats['cells']} "
              f"cells, jobs={sweep_stats['jobs']})")
        if args.assert_sweep_speedup is not None:
            if sweep_stats["speedup"] < args.assert_sweep_speedup:
                print(f"assert-sweep-speedup: FAILED, "
                      f"{sweep_stats['speedup']}x below the "
                      f"{args.assert_sweep_speedup}x budget")
                return 1
            print(f"assert-sweep-speedup: OK, {sweep_stats['speedup']}x "
                  f">= {args.assert_sweep_speedup}x")

    if args.cache_dir is not None:
        cache_stats = bench_cache(args.scale, args.seed, args.jobs,
                                  args.cache_dir,
                                  overrides=overrides or None,
                                  streaming=args.streaming)
        fresh["cache"] = cache_stats
        print(f"  cache: cold {cache_stats['cold_wall_s']:.3f}s, warm "
              f"{cache_stats['warm_wall_s']:.3f}s "
              f"({cache_stats['warm_speedup']}x)")
        if args.assert_warm:
            missed = [phase for phase, hit
                      in cache_stats["warm_hits"].items() if not hit]
            if missed:
                print(f"assert-warm: FAILED, regenerated: "
                      f"{', '.join(missed)}")
                return 1
            print("assert-warm: OK, every phase served from the cache")

    if args.check is not None:
        return check_regression(load_ledger(args.check), args.scale, fresh,
                                args.max_regression)

    ledger = load_ledger(args.output)
    runs = ledger.setdefault("runs", {})
    previous = runs.get(args.scale, {})
    # Carry forward sections a past run measured but this one did not:
    # replacing the scale row wholesale would silently drop e.g. the
    # handoff comparison whenever a later run skips --handoff-bench.
    for section in OPTIONAL_SECTIONS:
        if section not in fresh and section in previous:
            fresh[section] = previous[section]
    runs[args.scale] = fresh
    write_ledger(ledger, args.output)
    print(f"updated {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
