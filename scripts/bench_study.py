#!/usr/bin/env python
"""Benchmark the study's hot phases and track them in BENCH_study.json.

Runs the four expensive :class:`repro.EdgeStudy` phases (NEP workload,
Azure workload, latency campaign, throughput campaign) at a chosen scale,
taking the best of ``--repeat`` runs per phase, and records the result in
a JSON ledger keyed by scale.  The ledger is committed so the perf
trajectory of the simulator is tracked from PR to PR.

Usage::

    PYTHONPATH=src python scripts/bench_study.py --scale default
    PYTHONPATH=src python scripts/bench_study.py --scale smoke \
        --check BENCH_study.json --max-regression 2.0   # CI gate

``--check`` compares the fresh run against the committed ledger and exits
non-zero if the latency-campaign phase regressed by more than
``--max-regression``x — the CI guard for the vectorized batch engine.

``--cache-dir`` additionally measures the persistent artifact cache: one
cold run populating it and one warm run served from it, both recorded in
the ledger entry.  ``--assert-warm`` turns the warm run into a CI gate:
the process exits non-zero unless every tracked phase was served from
the cache (generation skipped entirely).
"""

from __future__ import annotations

import argparse
import json
import os
import platform as platform_mod
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

#: The phases tracked per run, in execution order.
PHASES = ("workload_nep", "workload_azure", "campaign_latency",
          "campaign_throughput")


def effective_seed(seed: int | None) -> int:
    """The seed a run actually uses (the scenario default when unset)."""
    from repro.config import DEFAULT_SCENARIO

    return seed if seed is not None else DEFAULT_SCENARIO.seed


def run_once(scale: str, seed: int | None, jobs: int = 1,
             cache=None) -> dict[str, object]:
    """One study run; returns its perf registry as a dict.

    The run carries an in-memory :class:`repro.obs.RunJournal`, so the
    result also has a ``"journal_phases"`` breakdown (wall/cpu/memory and
    an explicit ``cached`` flag per phase) — the journal is what lets the
    ledger distinguish a phase that *ran* from one served by the cache.
    """
    from repro.obs import RunJournal, phase_breakdown
    from repro.study import EdgeStudy, scenario_for

    with RunJournal(None) as journal:
        study = EdgeStudy(scenario_for(scale, seed), jobs=jobs, cache=cache,
                          journal=journal)
        study.nep
        study.azure
        study.latency_results
        study.throughput_results
        journal.close(counters=study.perf.counters or None)
    result = study.perf.as_dict()
    result["journal_phases"] = phase_breakdown(journal.events)
    return result


def bench(scale: str, seed: int | None, repeats: int,
          jobs: int) -> dict[str, object]:
    """Best-of-``repeats`` phase timings (min is robust to CI noise)."""
    runs = [run_once(scale, seed, jobs) for _ in range(repeats)]
    phases: dict[str, dict[str, float]] = {}
    for phase in PHASES:
        samples = [run["spans"][phase] for run in runs
                   if phase in run["spans"]]
        if not samples:
            continue
        phases[phase] = {
            "wall_s": min(s["wall_s"] for s in samples),
            "cpu_s": min(s["cpu_s"] for s in samples),
        }
        peaks = [run["journal_phases"][phase]["peak_rss_mb"] for run in runs
                 if "peak_rss_mb" in run["journal_phases"].get(phase, {})]
        if peaks:
            phases[phase]["peak_rss_mb"] = max(peaks)
    total = sum(p["wall_s"] for p in phases.values())
    return {
        "seed": effective_seed(seed),
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "phases": phases,
        "total_wall_s": round(total, 6),
        "counters": runs[0]["counters"],
        "python": platform_mod.python_version(),
        "numpy": np.__version__,
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
    }


def bench_cache(scale: str, seed: int | None, jobs: int,
                cache_dir: Path) -> dict[str, object]:
    """One cold run populating ``cache_dir``, one warm run served from it.

    Both runs record *per-phase* timings, with an explicit ``cached``
    flag per phase.  A warm phase served from the cache still gets an
    entry (its load time, ``cached: true``) instead of being dropped, so
    cold/warm rows in the ledger stay phase-aligned and comparable.
    """
    from repro.cache import ArtifactCache

    cache = ArtifactCache(cache_dir)
    timings = {}
    phase_rows: dict[str, dict[str, dict]] = {}
    for label in ("cold", "warm"):
        start = time.perf_counter()
        run = run_once(scale, seed, jobs, cache)
        timings[label] = {
            "wall_s": round(time.perf_counter() - start, 6),
            "run": run,
        }
        phase_rows[label] = {
            phase: {
                "wall_s": entry.get("wall_s"),
                "cpu_s": entry.get("cpu_s"),
                "cached": bool(entry.get("cached")),
            }
            for phase, entry in run["journal_phases"].items()
            if phase in PHASES
        }
    warm = timings["warm"]["run"]
    cold_s = timings["cold"]["wall_s"]
    warm_s = timings["warm"]["wall_s"]
    return {
        "dir": str(cache_dir),
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "warm_speedup": round(cold_s / max(warm_s, 1e-9), 2),
        "warm_hits": {phase: bool(warm["counters"].get(f"cache_hit:{phase}"))
                      for phase in PHASES},
        "phases": phase_rows,
    }


def load_ledger(path: Path) -> dict[str, object]:
    if path.exists():
        with path.open() as handle:
            return json.load(handle)
    return {"schema": 1, "runs": {}}


def write_ledger(ledger: dict[str, object], path: Path) -> None:
    """Atomically replace ``path`` with the serialized ledger.

    Written via a sibling temp file + ``os.replace`` so an interrupted
    run (ctrl-C, OOM, full disk) never leaves a truncated JSON behind
    for the next ``--check`` to choke on.
    """
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(ledger, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except FileNotFoundError:
            pass
        raise


def check_regression(ledger: dict[str, object], scale: str,
                     fresh: dict[str, object], max_ratio: float) -> int:
    """Return 0 if the campaign phase is within budget, 1 otherwise."""
    runs = ledger.get("runs", {})
    if scale not in runs:
        print(f"check: no committed baseline for scale {scale!r}; skipping")
        return 0
    baseline = runs[scale]["phases"].get("campaign_latency")
    current = fresh["phases"].get("campaign_latency")
    if baseline is None or current is None:
        print("check: campaign_latency phase missing; skipping")
        return 0
    ratio = current["wall_s"] / max(baseline["wall_s"], 1e-9)
    verdict = "OK" if ratio <= max_ratio else "REGRESSION"
    print(f"check: campaign_latency {current['wall_s']:.3f}s vs committed "
          f"{baseline['wall_s']:.3f}s -> {ratio:.2f}x (budget "
          f"{max_ratio:.1f}x) {verdict}")
    return 0 if ratio <= max_ratio else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("smoke", "default", "paper"),
                        default="default")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per phase; the minimum is kept")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for workload generation "
                             "(0 = all CPU cores)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="also measure a cold + warm artifact-cache "
                             "cycle rooted here")
    parser.add_argument("--assert-warm", action="store_true",
                        help="with --cache-dir: exit non-zero unless the "
                             "warm run hit the cache on every phase")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_study.json",
                        help="ledger to update (default: repo root)")
    parser.add_argument("--check", type=Path, default=None,
                        help="compare against this committed ledger instead "
                             "of writing")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="allowed campaign_latency slowdown for --check")
    args = parser.parse_args(argv)

    if args.scale == "paper" and args.repeat > 1:
        args.repeat = 1  # a paper-scale repeat is minutes, once is plenty

    if args.assert_warm and args.cache_dir is None:
        parser.error("--assert-warm requires --cache-dir")

    fresh = bench(args.scale, args.seed, args.repeat, args.jobs)
    print(f"scale={args.scale} jobs={args.jobs} "
          f"(host: {fresh['cpu_count']} cores):")
    for phase, stats in fresh["phases"].items():
        print(f"  {phase:<22}{stats['wall_s']:>9.3f}s wall "
              f"{stats['cpu_s']:>9.3f}s cpu")
    print(f"  {'total':<22}{fresh['total_wall_s']:>9.3f}s wall")

    if args.cache_dir is not None:
        cache_stats = bench_cache(args.scale, args.seed, args.jobs,
                                  args.cache_dir)
        fresh["cache"] = cache_stats
        print(f"  cache: cold {cache_stats['cold_wall_s']:.3f}s, warm "
              f"{cache_stats['warm_wall_s']:.3f}s "
              f"({cache_stats['warm_speedup']}x)")
        if args.assert_warm:
            missed = [phase for phase, hit
                      in cache_stats["warm_hits"].items() if not hit]
            if missed:
                print(f"assert-warm: FAILED, regenerated: "
                      f"{', '.join(missed)}")
                return 1
            print("assert-warm: OK, every phase served from the cache")

    if args.check is not None:
        return check_regression(load_ledger(args.check), args.scale, fresh,
                                args.max_regression)

    ledger = load_ledger(args.output)
    ledger.setdefault("runs", {})[args.scale] = fresh
    write_ledger(ledger, args.output)
    print(f"updated {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
