#!/usr/bin/env python
"""Docstring lint for the library, with zero third-party dependencies.

A stdlib-`ast` stand-in for the pydocstyle subset this repo enforces
(the container has no ruff/pydocstyle wheel, and CI may not either):

* **Every module** under ``src/repro`` must open with a docstring
  (pydocstyle D100/D104).
* In the **strict surfaces** — ``repro.obs``, ``repro.cache``,
  ``repro.parallel``, ``repro.faults``, ``repro.perf``,
  ``repro.phases`` — every public class, public function, and public
  method must carry a docstring (D101/D102/D103).  Private names
  (``_underscore``), dunders other than ``__init__``'s class, and
  ``@overload`` stubs are exempt; a public ``__init__`` is covered by
  its class docstring.

Equivalent ruff configuration (for environments that have it) lives in
``pyproject.toml`` under ``[tool.ruff.lint]``.

Usage::

    python scripts/check_docstrings.py            # lint src/repro
    python scripts/check_docstrings.py --list     # show strict surfaces
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"

#: Modules/packages (relative to src/repro) whose *public API* — not
#: just the module — must be fully docstring'd.
STRICT = (
    "obs",
    "cache.py",
    "parallel.py",
    "faults",
    "perf.py",
    "phases.py",
)


def is_public(name: str) -> bool:
    return not name.startswith("_")


def is_strict(path: Path) -> bool:
    relative = path.relative_to(PACKAGE_ROOT)
    return any(relative == Path(entry) or Path(entry) in relative.parents
               for entry in STRICT)


def _missing_in_class(node: ast.ClassDef, module: str) -> list[str]:
    problems = []
    if ast.get_docstring(node) is None:
        problems.append(f"{module}: class {node.name} has no docstring")
    for child in node.body:
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not is_public(child.name) or child.name == "__init__":
            continue
        if ast.get_docstring(child) is None:
            problems.append(f"{module}: method {node.name}.{child.name} "
                            f"has no docstring (line {child.lineno})")
    return problems


def check_file(path: Path) -> list[str]:
    """All docstring violations in one source file."""
    module = str(path.relative_to(REPO_ROOT))
    tree = ast.parse(path.read_text(), filename=module)
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{module}: module has no docstring")
    if not is_strict(path):
        return problems
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and is_public(node.name):
            problems.extend(_missing_in_class(node, module))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and is_public(node.name):
            if ast.get_docstring(node) is None:
                problems.append(f"{module}: function {node.name} has no "
                                f"docstring (line {node.lineno})")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list", action="store_true",
                        help="print the strict surfaces and exit")
    args = parser.parse_args(argv)
    if args.list:
        for entry in STRICT:
            print(f"src/repro/{entry}")
        return 0

    files = sorted(PACKAGE_ROOT.rglob("*.py"))
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    status = "FAILED" if problems else "OK"
    print(f"docstring-check: {status} — {len(files)} file(s), "
          f"{len(problems)} violation(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
