#!/usr/bin/env python
"""Run a study clean and under ``--chaos``, prove the outputs match.

The CI gate behind ``docs/resilience.md``: deterministic fault injection
must change *when* work happens, never *what* it produces.  The probe
runs the same ``repro run`` twice in child processes — once clean, once
with a chaos profile installed — each against its own cold cache, and
asserts:

1. both runs exit 0 (every injected fault was absorbed by a retry);
2. their stdout is byte-identical (same report, same numbers);
3. their journals canonicalize to the same event stream (the recovery
   story lives only in volatile events);
4. the chaos run stayed under a retry ceiling and quarantined nothing;
5. with ``--jobs >= 2`` and a profile that kills pool workers, at least
   one ``worker_restart`` proves the watchdog actually exercised.

Usage::

    PYTHONPATH=src python scripts/chaos_probe.py --jobs 2
    PYTHONPATH=src python scripts/chaos_probe.py fig9 --profile harsh
"""

from __future__ import annotations

import argparse
import hashlib
import os
import subprocess
import sys
import tempfile
from pathlib import Path

#: Volatile event types that tell the recovery story.
RECOVERY_EVENTS = ("job_retry", "worker_restart", "cache_retry",
                   "io_retry", "job_quarantined", "cache_write_error")


def run_cli(experiments: list[str], scale: str, jobs: int, root: Path,
            name: str, chaos: str | None) -> tuple[bytes, Path]:
    """One ``repro run`` in a child process; returns (stdout, journal)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    env.pop("REPRO_FAILPOINTS", None)  # the child decides its own chaos
    journal = root / f"{name}.jsonl"
    argv = [sys.executable, "-m", "repro", "run", *experiments,
            "--scale", scale, "--jobs", str(jobs),
            "--cache-dir", str(root / f"cache-{name}"),
            "--log-json", str(journal)]
    if chaos is not None:
        argv += ["--chaos", chaos]
    proc = subprocess.run(argv, env=env, stdout=subprocess.PIPE)
    if proc.returncode != 0:
        raise SystemExit(f"probe: FAILED, {name} run exited "
                         f"{proc.returncode}")
    return proc.stdout, journal


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments", nargs="*",
                        default=["fig2a", "table3", "qoe-sessions"],
                        help="experiments to run "
                             "(default: fig2a table3 qoe-sessions)")
    parser.add_argument("--profile", default="ci",
                        help="chaos profile for the faulty run")
    parser.add_argument("--scale", default="smoke")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--max-retries", type=int, default=25,
                        help="ceiling on total recovery events in the "
                             "chaos run")
    args = parser.parse_args(argv)

    from repro.obs import canonical_events, read_journal
    from repro.resilience import chaos_spec

    spec = chaos_spec(args.profile)
    with tempfile.TemporaryDirectory(prefix="chaos-probe-") as tmp:
        root = Path(tmp)
        clean_out, clean_journal = run_cli(args.experiments, args.scale,
                                           args.jobs, root, "clean", None)
        chaos_out, chaos_journal = run_cli(args.experiments, args.scale,
                                           args.jobs, root, "chaos",
                                           args.profile)

        if hashlib.sha256(clean_out).hexdigest() \
                != hashlib.sha256(chaos_out).hexdigest():
            print("probe: FAILED, chaos run produced different stdout")
            return 1
        print(f"probe: stdout identical "
              f"(sha256 {hashlib.sha256(clean_out).hexdigest()[:12]})")

        clean_events, warnings_a = read_journal(clean_journal)
        chaos_events, warnings_b = read_journal(chaos_journal)
        if warnings_a or warnings_b:
            print(f"probe: FAILED, journal warnings: "
                  f"{warnings_a + warnings_b}")
            return 1
        if canonical_events(clean_events) != canonical_events(chaos_events):
            print("probe: FAILED, canonical journals differ")
            return 1
        print("probe: canonical journals identical")

        counts = {etype: sum(1 for e in chaos_events
                             if e["type"] == etype)
                  for etype in RECOVERY_EVENTS}
        recovered = sum(counts.values())
        story = " ".join(f"{k}={v}" for k, v in counts.items() if v)
        print(f"probe: chaos run recovered from {recovered} event(s)"
              + (f" ({story})" if story else ""))
        if counts["job_quarantined"]:
            print("probe: FAILED, chaos run quarantined a job")
            return 1
        if recovered > args.max_retries:
            print(f"probe: FAILED, {recovered} recovery events exceed "
                  f"the --max-retries ceiling of {args.max_retries}")
            return 1
        if args.jobs >= 2 and "pool.kill_worker" in spec \
                and not counts["worker_restart"]:
            print("probe: FAILED, profile kills pool workers but no "
                  "worker_restart was journaled")
            return 1
    print(f"probe: OK, --chaos {args.profile} run is behaviour-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
